//! The full simulated system.
//!
//! `Machine` wires the pieces together the way Figure 7 does: workload
//! threads (one per core) issue byte-granular reads/writes against
//! memory-mapped DAX files; accesses flow through the cache hierarchy; LLC
//! misses and write-backs reach the [`MemoryController`]; the controller
//! talks to the PCM device and the metadata system. The kernel-side
//! events — page faults, key installs, unlink, `chmod` — go through the
//! filesystem model and the MMIO protocol.
//!
//! Four security configurations are selectable, matching the evaluation:
//!
//! | mode | hardware | software |
//! |---|---|---|
//! | [`SecurityMode::Unencrypted`] | none | plain ext4-DAX |
//! | [`SecurityMode::MemoryOnly`] | counter-mode memory encryption + Merkle | plain DAX (the paper's **baseline security**) |
//! | [`SecurityMode::FsEncr`] | baseline + the FsEncr file engine | DF-bit set at page faults |
//! | [`SecurityMode::Software`] | baseline hardware | eCryptfs model: page cache + page-granular software crypto |

use std::collections::HashMap;

use fsencr_cache::Hierarchy;
use fsencr_crypto::{ctr, Key128, PadDomain, PadInput};
use fsencr_fs::{
    AccessKind, DaxFs, FileHandle, FsError, GroupId, Ino, Mode, PageCacheModel, PageTable,
    Pte, SoftEncrConfig, UserId,
};
use fsencr_nvm::{LineAddr, PageId, PhysAddr, LINE_BYTES, PAGE_BYTES};
use fsencr_secmem::MetadataLayout;
use fsencr_sim::{Cycle, MachineConfig};

use fsencr_obs::Observer;

use crate::controller::batch::RegionRun;
use crate::controller::{CtrlMode, MemError, MemoryController, ModuleEnvelope, RecoveryReport};
use crate::snapshot::StatsSnapshot;
use crate::tlb::{Tlb, PAGE_WALK_CYCLES, TLB_ENTRIES};
use crate::trace::{TraceKind, Tracer};

/// Kernel cycles charged per minor page fault (trap, fault handler,
/// mapping insertion).
pub const FAULT_CYCLES: u64 = 1800;

/// Cycles charged per MMIO exchange with the controller at file
/// create/open/delete (register writes + key transport).
pub const MMIO_CYCLES: u64 = 300;

/// Cycles charged for the fence ending a persist (`clwb*; sfence`).
pub const FENCE_CYCLES: u64 = 10;

/// Cycles a streaming 4 KiB page copy occupies the core (hardware
/// prefetchers and write-combining hide most per-line latency; the page
/// moves at roughly memcpy speed).
pub const PAGE_COPY_CYCLES: u64 = 1200;

/// Pages reserved at the head of the DAX region for the filesystem's own
/// on-media metadata: the serialized superblock + inode table (first
/// [`FS_IMAGE_PAGES`]) and the metadata journal ring (the rest).
pub const FS_META_PAGES: u64 = 64;

/// Pages of the reserved area holding the serialized filesystem image.
pub const FS_IMAGE_PAGES: u64 = 56;

/// Kernel cycles charged per journaled metadata operation (transaction
/// setup + commit record), in addition to the journal-record writes.
pub const JOURNAL_CYCLES: u64 = 500;

/// Which security configuration the machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityMode {
    /// Plain ext4-DAX, no encryption at all (Figure 3's normalisation
    /// baseline).
    Unencrypted,
    /// Counter-mode memory encryption + integrity, no file engine — the
    /// paper's "Baseline Security" (Figures 8-15 normalise to this).
    MemoryOnly,
    /// The paper's contribution: baseline + hardware file encryption.
    FsEncr,
    /// Baseline hardware + eCryptfs-style software file encryption.
    Software,
}

impl std::fmt::Display for SecurityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SecurityMode::Unencrypted => "ext4-dax",
            SecurityMode::MemoryOnly => "baseline-security",
            SecurityMode::FsEncr => "fsencr",
            SecurityMode::Software => "software-encryption",
        };
        f.write_str(s)
    }
}

/// Machine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct MachineOpts {
    /// Architectural configuration (Table III by default).
    pub config: MachineConfig,
    /// Bytes of general (non-DAX) memory: heaps, page cache.
    pub general_bytes: u64,
    /// Bytes of the DAX-formatted persistent region.
    pub pmem_bytes: u64,
    /// Bytes reserved for the encrypted OTT spill region.
    pub ott_spill_bytes: u64,
    /// Seed for keys and FEK generation.
    pub seed: u64,
    /// Software-encryption cost model (used in [`SecurityMode::Software`]).
    pub softencr: SoftEncrConfig,
}

/// Named starting points for [`MachineOpts::preset`]. Every experiment
/// starts from one of these and overrides the handful of fields it
/// varies, so the two configurations are defined in exactly one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Unit-test scale: 1 MiB general + 1 MiB DAX, 64-page software page
    /// cache (fits the general region).
    SmallTest,
    /// The paper's benchmark scale: 32 MiB general + 64 MiB DAX, enough
    /// to exceed every cache while keeping simulations fast. The software
    /// page cache is sized like real DRAM page caches relative to the
    /// working sets (4096 pages = 16 MiB): capacity misses are rare and
    /// the software-encryption cost is dominated by per-syscall layering
    /// and per-fsync page crypto, as in the paper's eCryptfs measurement.
    Paper,
}

impl MachineOpts {
    /// Starts a builder from a named preset.
    ///
    /// # Examples
    ///
    /// ```
    /// use fsencr::{MachineOpts, Preset};
    ///
    /// let opts = MachineOpts::preset(Preset::SmallTest)
    ///     .pmem_bytes(2 << 20)
    ///     .metadata_cache_bytes(128 << 10)
    ///     .build();
    /// assert_eq!(opts.pmem_bytes, 2 << 20);
    /// assert_eq!(opts.general_bytes, 1 << 20); // preset default kept
    /// ```
    pub fn preset(preset: Preset) -> MachineOptsBuilder {
        let opts = match preset {
            Preset::SmallTest => MachineOpts {
                config: MachineConfig::paper_defaults(),
                general_bytes: 1 << 20,
                pmem_bytes: 1 << 20,
                ott_spill_bytes: 4096,
                seed: 0xF5EC,
                softencr: SoftEncrConfig {
                    page_cache_pages: 64,
                    ..SoftEncrConfig::default()
                },
            },
            Preset::Paper => MachineOpts {
                config: MachineConfig::paper_defaults(),
                general_bytes: 32 << 20,
                pmem_bytes: 64 << 20,
                ott_spill_bytes: 256 << 10,
                seed: 0xF5EC,
                softencr: SoftEncrConfig {
                    page_cache_pages: 4096,
                    ..SoftEncrConfig::default()
                },
            },
        };
        MachineOptsBuilder { opts }
    }

    /// [`Preset::SmallTest`] with no overrides.
    pub fn small_test() -> Self {
        MachineOpts::preset(Preset::SmallTest).build()
    }

    /// [`Preset::Paper`] with no overrides.
    pub fn benchmark() -> Self {
        MachineOpts::preset(Preset::Paper).build()
    }
}

/// Builder over [`MachineOpts`], started via [`MachineOpts::preset`].
///
/// Setters cover both the top-level region sizes and the commonly swept
/// architectural knobs (metadata-cache capacity, OTT latency, Osiris
/// stop-loss, the ablation switches), so experiments override one field
/// instead of restating a whole configuration.
#[derive(Debug, Clone, Copy)]
pub struct MachineOptsBuilder {
    opts: MachineOpts,
}

impl MachineOptsBuilder {
    /// Bytes of general (non-DAX) memory.
    pub fn general_bytes(mut self, bytes: u64) -> Self {
        self.opts.general_bytes = bytes;
        self
    }

    /// Bytes of the DAX-formatted persistent region.
    pub fn pmem_bytes(mut self, bytes: u64) -> Self {
        self.opts.pmem_bytes = bytes;
        self
    }

    /// Bytes reserved for the encrypted OTT spill region.
    pub fn ott_spill_bytes(mut self, bytes: u64) -> Self {
        self.opts.ott_spill_bytes = bytes;
        self
    }

    /// Seed for keys and FEK generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Metadata-cache capacity (the Figure 15 sweep axis).
    pub fn metadata_cache_bytes(mut self, bytes: usize) -> Self {
        self.opts.config.security.metadata_cache.size_bytes = bytes;
        self
    }

    /// OTT lookup latency in cycles.
    pub fn ott_latency_cycles(mut self, cycles: u64) -> Self {
        self.opts.config.security.ott_latency_cycles = cycles;
        self
    }

    /// Osiris stop-loss period (counter persistence interval).
    pub fn osiris_stop_loss(mut self, period: u32) -> Self {
        self.opts.config.security.osiris_stop_loss = period;
        self
    }

    /// Ablation: statically partition the metadata cache per kind.
    pub fn partition_metadata_cache(mut self, on: bool) -> Self {
        self.opts.config.security.partition_metadata_cache = on;
        self
    }

    /// Ablation: direct (serialized) encryption instead of counter mode.
    pub fn direct_encryption(mut self, on: bool) -> Self {
        self.opts.config.security.direct_encryption = on;
        self
    }

    /// Software page-cache capacity in 4 KiB pages.
    pub fn page_cache_pages(mut self, pages: usize) -> Self {
        self.opts.softencr.page_cache_pages = pages;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> MachineOpts {
        self.opts
    }
}

impl Default for MachineOpts {
    fn default() -> Self {
        MachineOpts::benchmark()
    }
}

/// Errors surfaced by machine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Filesystem-level failure.
    Fs(FsError),
    /// Memory-datapath failure (integrity violation, missing key).
    Mem(MemError),
    /// Access beyond the mapped file region.
    OutOfBounds,
    /// The operation is not supported in the current security mode.
    Unsupported(&'static str),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Fs(e) => write!(f, "{e}"),
            MachineError::Mem(e) => write!(f, "{e}"),
            MachineError::OutOfBounds => f.write_str("access beyond mapping"),
            MachineError::Unsupported(what) => write!(f, "unsupported in this mode: {what}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<FsError> for MachineError {
    fn from(e: FsError) -> Self {
        MachineError::Fs(e)
    }
}

impl From<MemError> for MachineError {
    fn from(e: MemError) -> Self {
        MachineError::Mem(e)
    }
}

/// Identifier of an mmap'ed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MapId(u32);

#[derive(Debug, Clone, Copy)]
struct Mapping {
    ino: Ino,
    fek: Option<Key128>,
    base: u64,
    bytes: u64,
    writable: bool,
}

/// Measurement snapshot returned by [`Machine::measurement`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Wall-clock cycles elapsed since `begin_measurement` (max over
    /// cores).
    pub cycles: u64,
    /// 64-byte reads that reached the NVM (data + metadata).
    pub nvm_reads: u64,
    /// 64-byte writes that reached the NVM (data + metadata).
    pub nvm_writes: u64,
    /// Metadata-cache hit rate over the window.
    pub meta_hit_rate: f64,
    /// OTT hits over the window.
    pub ott_hits: u64,
    /// OTT misses over the window.
    pub ott_misses: u64,
    /// Requests that engaged the file engine.
    pub file_accesses: u64,
    /// TLB hit rate across cores over the window.
    pub tlb_hit_rate: f64,
    /// Median data-read latency at the controller, in cycles.
    pub read_p50: u64,
    /// 99th-percentile data-read latency at the controller, in cycles.
    pub read_p99: u64,
}

const MAP_STRIDE: u64 = 1 << 30;
const MAP_BASE: u64 = 1 << 40;

/// The physically travelling half of a module transfer: the DIMM with its
/// contents (including the on-media filesystem image) and its ECC lanes.
#[derive(Debug)]
pub struct TransferredModule {
    nvm: fsencr_nvm::NvmDevice,
    ecc: fsencr_secmem::EccStore,
    opts: MachineOpts,
}

impl TransferredModule {
    /// Read-only media window — what the in-transit attacker sees
    /// (ciphertext only).
    pub fn inspect_plane(&self) -> crate::plane::ModuleInspect<'_> {
        crate::plane::ModuleInspect::new(&self.nvm)
    }

    /// Fault surface of the travelling DIMM — the in-transit tampering
    /// attacker. Import-time authentication against the envelope's root
    /// digest is expected to catch anything done here.
    pub fn fault_plane(&mut self) -> crate::plane::ModuleFault<'_> {
        crate::plane::ModuleFault::new(&mut self.nvm)
    }

}

/// The simulated system: cores, caches, controller, NVM, filesystem.
#[derive(Debug)]
pub struct Machine {
    mode: SecurityMode,
    opts: MachineOpts,
    hier: Hierarchy,
    ctrl: MemoryController,
    fs: DaxFs,
    pt: PageTable,
    mappings: HashMap<u32, Mapping>,
    next_map: u32,
    clocks: Vec<Cycle>,
    // Heap (general region) bump allocator.
    heap_next: u64,
    // Software-encryption state.
    page_cache: PageCacheModel,
    soft_cfg: SoftEncrConfig,
    pc_frames: HashMap<(u32, usize), u64>,
    pc_free: Vec<u64>,
    /// File pages that hold valid software-encrypted content on media
    /// (written back at least once). Pages outside this set read as
    /// zeroes, matching hole/fresh-block semantics.
    sw_valid: std::collections::HashSet<(u32, usize)>,
    sw_schedules: fsencr_crypto::ScheduleCache,
    mem_key: Key128,
    journal_cursor: u64,
    tlbs: Vec<Tlb>,
    tracer: Tracer,
    baseline: StatsSnapshot,
    /// Route region operations through the page-batched datapath
    /// (bit-identical in simulated cycles; host wall-clock only).
    batching: bool,
    /// Reused write-back collection buffer for batched persists.
    persist_scratch: Vec<(PhysAddr, [u8; LINE_BYTES])>,
}

impl Machine {
    /// Builds a machine in the given security mode.
    ///
    /// # Panics
    ///
    /// Panics if the regions are not page-aligned or do not fit the
    /// configured device.
    pub fn new(opts: MachineOpts, mode: SecurityMode) -> Self {
        assert_eq!(opts.general_bytes % PAGE_BYTES as u64, 0);
        assert_eq!(opts.pmem_bytes % PAGE_BYTES as u64, 0);
        let data_bytes = opts.general_bytes + opts.pmem_bytes;
        let layout = MetadataLayout::new(data_bytes, opts.ott_spill_bytes);
        let nvm = fsencr_nvm::NvmDevice::new(opts.config.nvm);
        let mem_key = Key128::from_seed(opts.seed ^ 0x4d45_4d4b_4559);
        let ott_key = Key128::from_seed(opts.seed ^ 0x4f54_544b_4559);
        let ctrl_mode = if mode == SecurityMode::Unencrypted {
            CtrlMode::Unencrypted
        } else {
            CtrlMode::Encrypted
        };
        let ctrl = MemoryController::new(
            ctrl_mode,
            layout,
            &opts.config.security,
            mem_key,
            ott_key,
            nvm,
        );
        Machine::assemble(mode, opts, ctrl, mem_key)
    }

    /// Shared constructor body for [`Machine::new`] and
    /// [`Machine::import_module`]: formats a fresh filesystem and starts
    /// every volatile structure (caches, TLBs, page table, clocks) blank.
    fn assemble(
        mode: SecurityMode,
        opts: MachineOpts,
        ctrl: MemoryController,
        mem_key: Key128,
    ) -> Self {
        assert!(
            opts.pmem_bytes / PAGE_BYTES as u64 > FS_META_PAGES,
            "DAX region too small for the filesystem metadata area"
        );
        let fs = DaxFs::format(
            opts.general_bytes / PAGE_BYTES as u64 + FS_META_PAGES,
            opts.pmem_bytes / PAGE_BYTES as u64 - FS_META_PAGES,
            opts.seed,
        );
        let cores = opts.config.cpu.cores;
        Machine {
            mode,
            opts,
            hier: Hierarchy::new(&opts.config.cpu),
            ctrl,
            fs,
            pt: PageTable::new(),
            mappings: HashMap::new(),
            next_map: 1,
            clocks: vec![Cycle::ZERO; cores],
            heap_next: PAGE_BYTES as u64,
            page_cache: PageCacheModel::new(opts.softencr.page_cache_pages),
            soft_cfg: opts.softencr,
            pc_frames: HashMap::new(),
            pc_free: Vec::new(),
            sw_valid: std::collections::HashSet::new(),
            sw_schedules: fsencr_crypto::ScheduleCache::new(),
            mem_key,
            journal_cursor: 0,
            tlbs: (0..cores).map(|_| Tlb::new(TLB_ENTRIES)).collect(),
            tracer: Tracer::new(),
            baseline: StatsSnapshot::default(),
            batching: true,
            persist_scratch: Vec::new(),
        }
    }

    /// Enables event tracing with a bounded buffer (see
    /// [`crate::trace::Tracer`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer.enable(capacity);
    }

    /// The recorded trace events, oldest first.
    pub fn trace(&self) -> Vec<crate::trace::TraceEvent> {
        self.tracer.events().copied().collect()
    }

    /// The machine's security mode.
    pub fn mode(&self) -> SecurityMode {
        self.mode
    }

    /// Construction options.
    pub fn opts(&self) -> &MachineOpts {
        &self.opts
    }

    /// The memory controller (statistics, attacker-model inspection).
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// Read-only window onto media, wear, Merkle root, quarantine and
    /// fault-injector state — the consolidated inspection surface.
    pub fn inspect_plane(&self) -> crate::plane::InspectPlane<'_> {
        crate::plane::InspectPlane::new(&self.ctrl)
    }

    /// The consolidated fault surface: raw tampering, deterministic
    /// fault plans, power-cut control, quarantine knobs, and (as the
    /// audited last resort) raw controller access.
    pub fn fault_plane(&mut self) -> crate::plane::FaultPlane<'_> {
        crate::plane::FaultPlane::new(&mut self.ctrl)
    }

    /// Turns the runtime security oracles (pad-uniqueness ledger and
    /// Merkle-coverage walker) on or off for this machine. Both are off
    /// by default — benches pay one branch per pad/persist and figure
    /// bytes are unaffected; replay tests switch them on to turn the
    /// paper's security argument into executed assertions.
    pub fn set_security_oracles(&mut self, on: bool) {
        self.ctrl.set_pad_oracle(on);
        self.ctrl.set_coverage_oracle(on);
    }

    /// Boot-auth lockout: suspends the file engine (reads/writes fall
    /// back to memory-only pads) until [`Machine::unlock_file_engine`].
    pub fn lock_file_engine(&mut self) {
        self.ctrl.lock_file_engine();
    }

    /// Re-arms the file engine after a [`Machine::lock_file_engine`].
    pub fn unlock_file_engine(&mut self) {
        self.ctrl.unlock_file_engine();
    }

    /// The filesystem model.
    pub fn fs(&self) -> &DaxFs {
        &self.fs
    }

    /// The memory encryption key — exposed for the "memory key revealed"
    /// attacker experiments of Section VI / Table I.
    pub fn mem_key(&self) -> Key128 {
        self.mem_key
    }

    /// Whether region operations take the page-batched datapath.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// Switches the page-batched datapath on (default) or off. Both
    /// settings are bit-identical in simulated cycles, statistics and
    /// media contents — `tests/batch_equivalence.rs` runs a machine in
    /// each mode against the same operation stream to prove it — so the
    /// switch only trades host-side wall-clock.
    pub fn set_batching(&mut self, on: bool) {
        self.batching = on;
    }

    /// The controller's on-chip Merkle root register.
    pub fn merkle_root(&self) -> [u8; 8] {
        self.ctrl.merkle_root()
    }

    // ------------------------------------------------------------------
    // Time.
    // ------------------------------------------------------------------

    /// Current local time of `core`.
    pub fn now(&self, core: usize) -> Cycle {
        self.clocks[core]
    }

    /// The machine-wide clock (max over cores).
    pub fn elapsed(&self) -> Cycle {
        self.clocks.iter().copied().max().unwrap_or(Cycle::ZERO)
    }

    /// Charges pure compute time to a core.
    pub fn advance(&mut self, core: usize, cycles: u64) {
        self.clocks[core] += cycles;
    }

    /// Barrier: aligns every core to the latest clock.
    pub fn sync_cores(&mut self) {
        let max = self.elapsed();
        for c in &mut self.clocks {
            *c = max;
        }
    }

    /// One coherent snapshot of every counter in the machine: the
    /// controller datapath (see [`MemoryController::snapshot`]) plus the
    /// machine-level clock and TLB totals. Reset-free: diff two
    /// snapshots with [`StatsSnapshot::delta`] to measure a window.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut s = self.ctrl.snapshot();
        s.cycles = self.elapsed().get();
        let (h, m) = self.tlbs.iter().fold((0u64, 0u64), |(h, m), t| {
            (h + t.stats().hits.get(), m + t.stats().misses.get())
        });
        s.tlb_hits = h;
        s.tlb_misses = m;
        s
    }

    /// Starts a measurement window: synchronizes the cores and remembers
    /// the current [`Machine::snapshot`] as the window baseline. No
    /// counter is reset, so nested/outer observers keep their totals.
    pub fn begin_measurement(&mut self) {
        self.sync_cores();
        self.baseline = self.snapshot();
    }

    /// Counters accumulated since [`Machine::begin_measurement`] (or
    /// since construction, if it was never called).
    pub fn measurement_snapshot(&self) -> StatsSnapshot {
        self.snapshot().delta(&self.baseline)
    }

    /// Snapshot of the current measurement window.
    pub fn measurement(&self) -> RunStats {
        let d = self.measurement_snapshot();
        RunStats {
            cycles: d.cycles,
            nvm_reads: d.nvm_reads,
            nvm_writes: d.nvm_writes,
            meta_hit_rate: d.meta_hit_rate(),
            ott_hits: d.ott_hits,
            ott_misses: d.ott_misses,
            file_accesses: d.file_accesses,
            tlb_hit_rate: d.tlb_hit_rate(),
            read_p50: d.read_latency.percentile(0.5),
            read_p99: d.read_latency.percentile(0.99),
        }
    }

    // ------------------------------------------------------------------
    // Deterministic snapshots (`fsencr-snap/1`).
    // ------------------------------------------------------------------

    /// Fingerprint binding a snapshot to the exact construction
    /// parameters: restoring under different options or a different
    /// security mode would silently change simulated behaviour, so it is
    /// rejected up front instead.
    fn config_fingerprint(opts: &MachineOpts, mode: SecurityMode) -> u64 {
        fsencr_snapshot::fnv1a64_once(format!("{opts:?}|{mode:?}").as_bytes())
    }

    /// Serializes the complete simulation-visible machine state in the
    /// canonical `fsencr-snap/1` format. A machine restored from these
    /// bytes with [`Machine::restore_snapshot`] (under the same options
    /// and mode) continues bit-identically — same simulated cycles, same
    /// media, same Merkle root, same statistics — as one that never
    /// stopped. Host-side accelerators (tracer, schedule caches, scratch
    /// buffers, observers, oracles) are rebuilt cold; the batch- and
    /// observer-equivalence suites prove them cycle-neutral.
    ///
    /// # Errors
    ///
    /// [`fsencr_snapshot::SnapError::InjectorArmed`] while a fault
    /// injector or stuck-cell overlay is armed — campaign scaffolding is
    /// host state; disarm before checkpointing.
    pub fn save_snapshot(&self) -> Result<Vec<u8>, fsencr_snapshot::SnapError> {
        let mut enc = fsencr_snapshot::Enc::new();

        enc.begin_section("machine");
        enc.put_u64(Self::config_fingerprint(&self.opts, self.mode));
        enc.put_bytes(self.mem_key.as_bytes());
        enc.put_u32(self.next_map);
        enc.put_u64(self.heap_next);
        enc.put_u64(self.journal_cursor);
        enc.put_bool(self.batching);
        enc.put_u64(self.clocks.len() as u64);
        for c in &self.clocks {
            enc.put_u64(c.get());
        }
        let mut maps: Vec<(u32, Mapping)> = self.mappings.iter().map(|(k, v)| (*k, *v)).collect();
        maps.sort_unstable_by_key(|(k, _)| *k);
        enc.put_u64(maps.len() as u64);
        for (id, m) in maps {
            enc.put_u32(id);
            enc.put_u32(m.ino.get());
            match m.fek {
                Some(k) => {
                    enc.put_bool(true);
                    enc.put_bytes(k.as_bytes());
                }
                None => enc.put_bool(false),
            }
            enc.put_u64(m.base);
            enc.put_u64(m.bytes);
            enc.put_bool(m.writable);
        }
        let mut frames: Vec<(u32, u64, u64)> = self
            .pc_frames
            .iter()
            .map(|(&(ino, page), &frame)| (ino, page as u64, frame))
            .collect();
        frames.sort_unstable_by_key(|&(ino, page, _)| (ino, page));
        enc.put_u64(frames.len() as u64);
        for (ino, page, frame) in frames {
            enc.put_u32(ino);
            enc.put_u64(page);
            enc.put_u64(frame);
        }
        // The free list is popped from the tail, so its order is
        // behavioral — written verbatim.
        enc.put_u64(self.pc_free.len() as u64);
        for f in &self.pc_free {
            enc.put_u64(*f);
        }
        let mut valid: Vec<(u32, u64)> = self
            .sw_valid
            .iter()
            .map(|&(ino, page)| (ino, page as u64))
            .collect();
        valid.sort_unstable();
        enc.put_u64(valid.len() as u64);
        for (ino, page) in valid {
            enc.put_u32(ino);
            enc.put_u64(page);
        }
        enc.end_section();

        enc.begin_section("hier");
        self.hier.snap_save(&mut enc);
        enc.end_section();

        enc.begin_section("ctrl");
        self.ctrl.snap_save(&mut enc)?;
        enc.end_section();

        enc.begin_section("fs");
        enc.put_blob(&self.fs.serialize());
        self.fs.keyring().snap_save(&mut enc);
        self.page_cache.snap_save(&mut enc);
        self.pt.snap_save(&mut enc);
        enc.end_section();

        enc.begin_section("tlbs");
        enc.put_u64(self.tlbs.len() as u64);
        for tlb in &self.tlbs {
            tlb.snap_save(&mut enc);
        }
        enc.end_section();

        enc.begin_section("stats");
        self.baseline.snap_save(&mut enc);
        enc.end_section();

        Ok(enc.finish())
    }

    /// Restores a machine from [`Machine::save_snapshot`] bytes.
    ///
    /// `opts` and `mode` come from the caller — a snapshot carries state,
    /// never configuration — and must match the saving machine's exactly
    /// (checked via a fingerprint).
    ///
    /// # Errors
    ///
    /// [`fsencr_snapshot::SnapError::StateMismatch`] on a fingerprint
    /// mismatch; decode errors on corrupt or truncated bytes.
    pub fn restore_snapshot(
        opts: MachineOpts,
        mode: SecurityMode,
        bytes: &[u8],
    ) -> Result<Machine, fsencr_snapshot::SnapError> {
        use fsencr_snapshot::SnapError;

        let mut dec = fsencr_snapshot::Dec::new(bytes)?;

        dec.begin_section("machine")?;
        if dec.get_u64()? != Self::config_fingerprint(&opts, mode) {
            return Err(SnapError::StateMismatch);
        }
        let mem_key = Key128::from_bytes(dec.get_arr16()?);
        let next_map = dec.get_u32()?;
        let heap_next = dec.get_u64()?;
        let journal_cursor = dec.get_u64()?;
        let batching = dec.get_bool()?;
        let cores = dec.get_len()?;
        if cores != opts.config.cpu.cores {
            return Err(SnapError::StateMismatch);
        }
        let mut clocks = Vec::with_capacity(cores);
        for _ in 0..cores {
            clocks.push(Cycle::new(dec.get_u64()?));
        }
        let n_maps = dec.get_len()?;
        let mut mappings = HashMap::with_capacity(n_maps);
        for _ in 0..n_maps {
            let id = dec.get_u32()?;
            let ino = Ino::new(dec.get_u32()?);
            let fek = if dec.get_bool()? {
                Some(Key128::from_bytes(dec.get_arr16()?))
            } else {
                None
            };
            let base = dec.get_u64()?;
            let bytes = dec.get_u64()?;
            let writable = dec.get_bool()?;
            mappings.insert(
                id,
                Mapping {
                    ino,
                    fek,
                    base,
                    bytes,
                    writable,
                },
            );
        }
        let n_frames = dec.get_len()?;
        let mut pc_frames = HashMap::with_capacity(n_frames);
        for _ in 0..n_frames {
            let ino = dec.get_u32()?;
            let page = dec.get_u64()? as usize;
            pc_frames.insert((ino, page), dec.get_u64()?);
        }
        let n_free = dec.get_len()?;
        let mut pc_free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            pc_free.push(dec.get_u64()?);
        }
        let n_valid = dec.get_len()?;
        let mut sw_valid = std::collections::HashSet::with_capacity(n_valid);
        for _ in 0..n_valid {
            let ino = dec.get_u32()?;
            let page = dec.get_u64()? as usize;
            sw_valid.insert((ino, page));
        }
        dec.end_section()?;

        dec.begin_section("hier")?;
        let hier = Hierarchy::snap_load(&opts.config.cpu, &mut dec)?;
        dec.end_section()?;

        dec.begin_section("ctrl")?;
        let data_bytes = opts.general_bytes + opts.pmem_bytes;
        let layout = MetadataLayout::new(data_bytes, opts.ott_spill_bytes);
        let ctrl_mode = if mode == SecurityMode::Unencrypted {
            CtrlMode::Unencrypted
        } else {
            CtrlMode::Encrypted
        };
        let ctrl = MemoryController::snap_load(
            ctrl_mode,
            layout,
            &opts.config.security,
            opts.config.nvm,
            &mut dec,
        )?;
        dec.end_section()?;

        dec.begin_section("fs")?;
        let image = dec.get_blob()?;
        let mut fs =
            DaxFs::deserialize(image).map_err(|_| SnapError::Corrupt("filesystem image"))?;
        *fs.keyring_mut() = fsencr_fs::Keyring::snap_load(&mut dec)?;
        let page_cache = PageCacheModel::snap_load(opts.softencr.page_cache_pages, &mut dec)?;
        let pt = PageTable::snap_load(&mut dec)?;
        dec.end_section()?;

        dec.begin_section("tlbs")?;
        let n_tlbs = dec.get_len()?;
        if n_tlbs != cores {
            return Err(SnapError::StateMismatch);
        }
        let mut tlbs = Vec::with_capacity(cores);
        for _ in 0..cores {
            tlbs.push(Tlb::snap_load(TLB_ENTRIES, &mut dec)?);
        }
        dec.end_section()?;

        dec.begin_section("stats")?;
        let baseline = StatsSnapshot::snap_load(&mut dec)?;
        dec.end_section()?;

        dec.finish()?;

        Ok(Machine {
            mode,
            opts,
            hier,
            ctrl,
            fs,
            pt,
            mappings,
            next_map,
            clocks,
            heap_next,
            page_cache,
            soft_cfg: opts.softencr,
            pc_frames,
            pc_free,
            sw_valid,
            sw_schedules: fsencr_crypto::ScheduleCache::new(),
            mem_key,
            journal_cursor,
            tlbs,
            tracer: Tracer::new(),
            baseline,
            batching,
            persist_scratch: Vec::new(),
        })
    }

    // ------------------------------------------------------------------
    // Observation (cycle-attribution).
    // ------------------------------------------------------------------

    /// Enables the controller's cycle-attribution observer.
    /// `span_capacity` bounds the per-event span buffer (0 keeps spans
    /// off while still collecting metrics).
    pub fn enable_observer(&mut self, span_capacity: usize) {
        self.ctrl.enable_observer(span_capacity);
    }

    /// Disables (and clears) the observer; the datapath reverts to its
    /// one-branch-per-record disabled cost.
    pub fn disable_observer(&mut self) {
        self.ctrl.disable_observer();
    }

    /// The controller's observer (metrics + recorded spans).
    pub fn observer(&self) -> &Observer {
        self.ctrl.observer()
    }

    // ------------------------------------------------------------------
    // Filesystem operations (kernel + MMIO protocol).
    // ------------------------------------------------------------------

    /// Logs a user in (derives their session KEK).
    pub fn login(&mut self, user: UserId, passphrase: &str) {
        self.fs.login(user, passphrase);
    }

    /// Creates a file; for encrypted files in FsEncr mode the FEK is
    /// installed in the controller's OTT via MMIO.
    ///
    /// # Errors
    ///
    /// Filesystem or spill-region failures.
    pub fn create(
        &mut self,
        user: UserId,
        group: GroupId,
        name: &str,
        mode: Mode,
        passphrase: Option<&str>,
    ) -> Result<FileHandle, MachineError> {
        let handle = self.fs.create(user, group, name, mode, passphrase)?;
        self.journal_op(0, 1)?;
        self.install_handle_key(&handle)?;
        Ok(handle)
    }

    /// Opens a file; re-installs the key in case the OTT lost it across a
    /// reboot.
    ///
    /// # Errors
    ///
    /// Filesystem (permission/passphrase) or spill-region failures.
    pub fn open(
        &mut self,
        user: UserId,
        groups: &[GroupId],
        name: &str,
        access: AccessKind,
        passphrase: Option<&str>,
    ) -> Result<FileHandle, MachineError> {
        let handle = self.fs.open(user, groups, name, access, passphrase)?;
        self.install_handle_key(&handle)?;
        Ok(handle)
    }

    fn install_handle_key(&mut self, handle: &FileHandle) -> Result<(), MachineError> {
        if self.mode == SecurityMode::FsEncr {
            if let Some(fek) = handle.fek {
                let at = self.clocks[0];
                self.tracer.record(
                    at,
                    TraceKind::KeyInstall {
                        gid: handle.group.get(),
                        fid: handle.ino.get(),
                    },
                );
                self.clocks[0] += MMIO_CYCLES;
                let done =
                    self.ctrl
                        .install_key(self.clocks[0], handle.group.get(), handle.ino.get(), fek)?;
                self.clocks[0] = done;
            }
        }
        Ok(())
    }

    /// Deletes a file: shreds its pages, removes its key from the OTT and
    /// spill region, and unmaps any PTEs.
    ///
    /// # Errors
    ///
    /// Filesystem or metadata failures.
    pub fn unlink(&mut self, user: UserId, name: &str) -> Result<(), MachineError> {
        let un = self.fs.unlink(user, name)?;
        self.journal_op(0, 2)?;
        self.page_cache.flush_file(un.ino); // deleted: no write-back
        self.pc_reclaim(un.ino);
        self.clocks[0] += MMIO_CYCLES;
        let mut t = self.clocks[0];
        for frame in &un.freed {
            for line in frame.lines() {
                self.hier.clflush(line); // discard: content is being shredded
            }
            if self.mode != SecurityMode::Unencrypted {
                self.tracer.record(t, TraceKind::Shred { frame: frame.get() });
                t = self.ctrl.shred_page(t, *frame)?;
            }
            self.ctrl.clear_file_page(*frame);
            self.pt.unmap_frame(*frame);
        }
        // TLB shootdown: stale translations to freed frames must die.
        for tlb in &mut self.tlbs {
            tlb.flush();
        }
        if un.was_encrypted && self.mode == SecurityMode::FsEncr {
            self.tracer.record(
                t,
                TraceKind::KeyRemove {
                    gid: un.group.get(),
                    fid: un.ino.get(),
                },
            );
            t = self.ctrl.remove_key(t, un.group.get(), un.ino.get())?;
        }
        self.clocks[0] = t;
        // Mappings pointing at the file become invalid.
        self.mappings.retain(|_, m| m.ino != un.ino);
        Ok(())
    }

    /// Renames a file.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn rename(&mut self, user: UserId, from: &str, to: &str) -> Result<(), MachineError> {
        self.fs.rename(user, from, to)?;
        self.journal_op(0, 3)
    }

    /// `chmod` passthrough.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn chmod(&mut self, user: UserId, name: &str, mode: Mode) -> Result<(), MachineError> {
        self.fs.chmod(user, name, mode)?;
        self.journal_op(0, 4)
    }

    /// `chown` passthrough (root only).
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn chown(
        &mut self,
        user: UserId,
        name: &str,
        owner: UserId,
        group: GroupId,
    ) -> Result<(), MachineError> {
        Ok(self.fs.chown(user, name, owner, group)?)
    }

    /// Rotates a file's key (Section VI): in FsEncr mode every allocated
    /// page is re-encrypted under the new FEK (the eager variant of the
    /// paper's scheme), then the new key replaces the old in the OTT.
    ///
    /// # Errors
    ///
    /// Filesystem failures, or [`MachineError::Unsupported`] in software
    /// mode.
    pub fn rekey(
        &mut self,
        user: UserId,
        name: &str,
        old_passphrase: &str,
        new_passphrase: &str,
    ) -> Result<(), MachineError> {
        if self.mode == SecurityMode::Software {
            return Err(MachineError::Unsupported("rekey under software encryption"));
        }
        let inode = self.fs.stat(name).ok_or(FsError::NotFound)?;
        let ino = inode.ino();
        let group = inode.group();
        let frames: Vec<PageId> = inode.mapped_pages().collect();
        let (_old, new_fek) = self.fs.rekey(user, name, old_passphrase, new_passphrase)?;

        if self.mode == SecurityMode::FsEncr {
            // Flush dirty plaintext so the reads below see current data,
            // then read *everything* under the old key before switching —
            // the key swap is global per (gid, fid).
            self.flush_hierarchy()?;
            let mut t = self.elapsed();
            let mut pages_plain: Vec<(PageId, Vec<[u8; LINE_BYTES]>)> = Vec::new();
            for frame in frames {
                let mut page_plain = Vec::with_capacity(64);
                if self.batching {
                    let addrs: Vec<PhysAddr> =
                        frame.lines().map(|l| PhysAddr::new(l.get())).collect();
                    t = self.ctrl.read_lines(t, &addrs, &mut page_plain)?;
                } else {
                    for line in frame.lines() {
                        let (plain, done) = self.ctrl.read_line(t, PhysAddr::new(line.get()))?;
                        t = done;
                        page_plain.push(plain);
                    }
                }
                pages_plain.push((frame, page_plain));
            }
            t += MMIO_CYCLES;
            t = self.ctrl.install_key(t, group.get(), ino.get(), new_fek)?;
            for (frame, page_plain) in pages_plain {
                if self.batching {
                    let writes: Vec<(PhysAddr, [u8; LINE_BYTES])> = frame
                        .lines()
                        .map(|l| PhysAddr::new(l.get()))
                        .zip(page_plain)
                        .collect();
                    t = self.ctrl.write_lines(t, &writes)?;
                } else {
                    for (line, plain) in frame.lines().zip(page_plain) {
                        t = self.ctrl.write_line(t, PhysAddr::new(line.get()), &plain)?;
                    }
                }
            }
            self.clocks[0] = self.clocks[0].max(t);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mapping and data path.
    // ------------------------------------------------------------------

    /// Maps a file into the (single, shared) address space.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for future quota
    /// enforcement.
    pub fn mmap(&mut self, handle: &FileHandle) -> Result<MapId, MachineError> {
        let id = self.next_map;
        self.next_map += 1;
        let base = MAP_BASE + id as u64 * MAP_STRIDE;
        self.mappings.insert(
            id,
            Mapping {
                ino: handle.ino,
                fek: handle.fek,
                base,
                bytes: MAP_STRIDE,
                writable: handle.writable,
            },
        );
        Ok(MapId(id))
    }

    /// Finds an existing mapping of the file at `path` without driving a
    /// single simulated cycle — a host-side inspection for snapshot
    /// warm-starts, where a workload re-attaches to the mapping its own
    /// `setup` created before the snapshot was taken. Returns the oldest
    /// (lowest-id) live mapping of the file's inode.
    pub fn mapping_of(&self, path: &str) -> Option<MapId> {
        let ino = self.fs.stat(path)?.ino();
        self.mappings
            .iter()
            .filter(|(_, m)| m.ino == ino)
            .map(|(&id, _)| id)
            .min()
            .map(MapId)
    }

    /// Unmaps a region. In software mode, dirty page-cache pages are
    /// written back first (close semantics).
    ///
    /// # Errors
    ///
    /// Write-back failures in software mode.
    pub fn munmap(&mut self, core: usize, map: MapId) -> Result<(), MachineError> {
        if let Some(m) = self.mappings.get(&map.0).copied() {
            if self.mode == SecurityMode::Software {
                let dirty = self.page_cache.flush_file(m.ino);
                for (page, is_dirty) in dirty {
                    if is_dirty {
                        self.sw_writeback_page(core, &m, page)?;
                    }
                }
                self.pc_reclaim(m.ino);
            }
        }
        self.mappings.remove(&map.0);
        for tlb in &mut self.tlbs {
            tlb.flush();
        }
        Ok(())
    }

    fn mapping(&self, map: MapId) -> Result<Mapping, MachineError> {
        self.mappings
            .get(&map.0)
            .copied()
            .ok_or(MachineError::OutOfBounds)
    }

    /// Resolves the physical frame backing `page_idx` of a mapping,
    /// faulting it in (allocation + FECB stamp + PTE install) on first
    /// touch.
    fn resolve_page(
        &mut self,
        core: usize,
        m: &Mapping,
        page_idx: usize,
    ) -> Result<PageId, MachineError> {
        let vpn = m.base / PAGE_BYTES as u64 + page_idx as u64;
        // MMU: TLB hit is free (folded into the access); a miss walks the
        // page table before either succeeding or faulting.
        if let Some(pte) = self.tlbs[core].lookup(vpn) {
            return Ok(pte.frame);
        }
        self.advance(core, PAGE_WALK_CYCLES);
        if let Some(pte) = self.pt.pte(vpn) {
            self.tlbs[core].insert(vpn, pte);
            return Ok(pte.frame);
        }
        // Page fault.
        self.clocks[core] += FAULT_CYCLES;
        let pf = self.fs.ensure_page(m.ino, page_idx)?;
        let df = pf.df && self.mode == SecurityMode::FsEncr;
        if df {
            let done = self.ctrl.stamp_file_page(
                self.clocks[core],
                pf.frame,
                pf.group.get(),
                pf.ino.get(),
            )?;
            self.clocks[core] = done;
        }
        self.pt.map(vpn, Pte { frame: pf.frame, df });
        self.tlbs[core].insert(vpn, Pte { frame: pf.frame, df });
        let at = self.clocks[core];
        self.tracer.record(
            at,
            TraceKind::PageFault {
                frame: pf.frame.get(),
                gid: pf.group.get(),
                fid: pf.ino.get(),
            },
        );
        if pf.newly_allocated {
            self.journal_op(core, 6)?;
            // The kernel zeroes freshly allocated file blocks *durably*
            // before exposing them (DAX block zeroing uses non-temporal
            // stores + flush): this establishes valid ciphertext for the
            // zero content that survives an immediate crash.
            let now = self.clocks[core];
            if self.batching {
                // Same write/fill interleave as below; one memo spans the
                // whole page so the MECB parse happens once, not 64 times.
                let mut run = RegionRun::new();
                for line in pf.frame.lines() {
                    self.ctrl.write_line_with(
                        now,
                        PhysAddr::new(line.get()),
                        &[0u8; LINE_BYTES],
                        &mut run,
                    )?;
                    let wbs = self.hier.fill(core, line, [0u8; LINE_BYTES]);
                    for wb in wbs {
                        self.ctrl
                            .write_line_with(now, PhysAddr::new(wb.addr.get()), &wb.data, &mut run)?;
                    }
                }
            } else {
                for line in pf.frame.lines() {
                    self.ctrl
                        .write_line(now, PhysAddr::new(line.get()), &[0u8; LINE_BYTES])?;
                    let wbs = self.hier.fill(core, line, [0u8; LINE_BYTES]);
                    for wb in wbs {
                        self.ctrl
                            .write_line(now, PhysAddr::new(wb.addr.get()), &wb.data)?;
                    }
                }
            }
        }
        Ok(pf.frame)
    }

    /// Loads one line through the hierarchy, fetching from the controller
    /// on a full miss. Returns the line's plaintext.
    fn load_line(&mut self, core: usize, line: LineAddr) -> Result<[u8; LINE_BYTES], MemError> {
        let out = self.hier.load(core, line);
        self.clocks[core] += out.latency;
        let now = self.clocks[core];
        for wb in &out.writebacks {
            self.ctrl.write_line(now, PhysAddr::new(wb.addr.get()), &wb.data)?;
        }
        match out.data {
            Some(data) => Ok(data),
            None => {
                let (data, done) = self.ctrl.read_line(now, PhysAddr::new(line.get()))?;
                self.clocks[core] = done;
                let wbs = self.hier.fill(core, line, data);
                for wb in wbs {
                    self.ctrl
                        .write_line(done, PhysAddr::new(wb.addr.get()), &wb.data)?;
                }
                Ok(data)
            }
        }
    }

    /// Stores one full line through the hierarchy (write-allocate, no
    /// fetch). Write-backs are posted.
    fn store_line(&mut self, core: usize, line: LineAddr, data: [u8; LINE_BYTES]) -> Result<(), MemError> {
        let (_hit, latency, wbs) = self.hier.store(core, line, data);
        self.clocks[core] += latency;
        let now = self.clocks[core];
        for wb in wbs {
            self.ctrl.write_line(now, PhysAddr::new(wb.addr.get()), &wb.data)?;
        }
        Ok(())
    }

    /// [`Self::load_line`] threading a region-run memo: the hierarchy is
    /// consulted identically; controller traffic (miss fetch, write-backs)
    /// shares the caller's batch state.
    fn load_line_run(
        &mut self,
        core: usize,
        line: LineAddr,
        run: &mut RegionRun,
    ) -> Result<[u8; LINE_BYTES], MemError> {
        let out = self.hier.load(core, line);
        self.clocks[core] += out.latency;
        let now = self.clocks[core];
        for wb in &out.writebacks {
            self.ctrl
                .write_line_with(now, PhysAddr::new(wb.addr.get()), &wb.data, run)?;
        }
        match out.data {
            Some(data) => Ok(data),
            None => {
                let (data, done) = self.ctrl.read_line_with(now, PhysAddr::new(line.get()), run)?;
                self.clocks[core] = done;
                let wbs = self.hier.fill(core, line, data);
                for wb in wbs {
                    self.ctrl
                        .write_line_with(done, PhysAddr::new(wb.addr.get()), &wb.data, run)?;
                }
                Ok(data)
            }
        }
    }

    /// [`Self::store_line`] threading a region-run memo.
    fn store_line_run(
        &mut self,
        core: usize,
        line: LineAddr,
        data: [u8; LINE_BYTES],
        run: &mut RegionRun,
    ) -> Result<(), MemError> {
        let (_hit, latency, wbs) = self.hier.store(core, line, data);
        self.clocks[core] += latency;
        let now = self.clocks[core];
        for wb in wbs {
            self.ctrl
                .write_line_with(now, PhysAddr::new(wb.addr.get()), &wb.data, run)?;
        }
        Ok(())
    }

    /// Byte-granular read within one physical page.
    fn read_page_bytes(
        &mut self,
        core: usize,
        frame: PageId,
        offset_in_page: usize,
        buf: &mut [u8],
    ) -> Result<(), MemError> {
        let base = frame.get() * PAGE_BYTES as u64 + offset_in_page as u64;
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = base + pos as u64;
            let line = LineAddr::new(addr);
            let in_line = (addr - line.get()) as usize;
            let take = (LINE_BYTES - in_line).min(buf.len() - pos);
            let data = self.load_line(core, line)?;
            buf[pos..pos + take].copy_from_slice(&data[in_line..in_line + take]);
            pos += take;
        }
        Ok(())
    }

    /// [`Self::read_page_bytes`] threading a region-run memo across the
    /// page's lines.
    fn read_page_bytes_run(
        &mut self,
        core: usize,
        frame: PageId,
        offset_in_page: usize,
        buf: &mut [u8],
        run: &mut RegionRun,
    ) -> Result<(), MemError> {
        let base = frame.get() * PAGE_BYTES as u64 + offset_in_page as u64;
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = base + pos as u64;
            let line = LineAddr::new(addr);
            let in_line = (addr - line.get()) as usize;
            let take = (LINE_BYTES - in_line).min(buf.len() - pos);
            let data = self.load_line_run(core, line, run)?;
            buf[pos..pos + take].copy_from_slice(&data[in_line..in_line + take]);
            pos += take;
        }
        Ok(())
    }

    /// Byte-granular write within one physical page (read-modify-write
    /// for partial lines, allocate-no-fetch for full lines).
    fn write_page_bytes(
        &mut self,
        core: usize,
        frame: PageId,
        offset_in_page: usize,
        data: &[u8],
    ) -> Result<(), MemError> {
        let base = frame.get() * PAGE_BYTES as u64 + offset_in_page as u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let addr = base + pos as u64;
            let line = LineAddr::new(addr);
            let in_line = (addr - line.get()) as usize;
            let take = (LINE_BYTES - in_line).min(data.len() - pos);
            let mut merged = if take == LINE_BYTES {
                [0u8; LINE_BYTES]
            } else {
                self.load_line(core, line)?
            };
            merged[in_line..in_line + take].copy_from_slice(&data[pos..pos + take]);
            self.store_line(core, line, merged)?;
            pos += take;
        }
        Ok(())
    }

    /// [`Self::write_page_bytes`] threading a region-run memo across the
    /// page's lines.
    fn write_page_bytes_run(
        &mut self,
        core: usize,
        frame: PageId,
        offset_in_page: usize,
        data: &[u8],
        run: &mut RegionRun,
    ) -> Result<(), MemError> {
        let base = frame.get() * PAGE_BYTES as u64 + offset_in_page as u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let addr = base + pos as u64;
            let line = LineAddr::new(addr);
            let in_line = (addr - line.get()) as usize;
            let take = (LINE_BYTES - in_line).min(data.len() - pos);
            let mut merged = if take == LINE_BYTES {
                [0u8; LINE_BYTES]
            } else {
                self.load_line_run(core, line, run)?
            };
            merged[in_line..in_line + take].copy_from_slice(&data[pos..pos + take]);
            self.store_line_run(core, line, merged, run)?;
            pos += take;
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes from a mapped file at `offset`.
    ///
    /// # Errors
    ///
    /// Mapping, filesystem, or memory-path failures.
    pub fn read(
        &mut self,
        core: usize,
        map: MapId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), MachineError> {
        let m = self.mapping(map)?;
        if offset + buf.len() as u64 > m.bytes {
            return Err(MachineError::OutOfBounds);
        }
        if self.mode == SecurityMode::Software && m.fek.is_some() {
            return self.soft_read(core, &m, offset, buf);
        }
        let mut run = RegionRun::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            let off = offset + pos as u64;
            let page_idx = (off / PAGE_BYTES as u64) as usize;
            let in_page = (off % PAGE_BYTES as u64) as usize;
            let take = (PAGE_BYTES - in_page).min(buf.len() - pos);
            let frame = self.resolve_page(core, &m, page_idx)?;
            if self.batching {
                self.read_page_bytes_run(core, frame, in_page, &mut buf[pos..pos + take], &mut run)?;
            } else {
                self.read_page_bytes(core, frame, in_page, &mut buf[pos..pos + take])?;
            }
            pos += take;
        }
        Ok(())
    }

    /// Writes `data` to a mapped file at `offset`.
    ///
    /// # Errors
    ///
    /// Mapping, filesystem, or memory-path failures.
    pub fn write(
        &mut self,
        core: usize,
        map: MapId,
        offset: u64,
        data: &[u8],
    ) -> Result<(), MachineError> {
        let m = self.mapping(map)?;
        if !m.writable {
            return Err(MachineError::Fs(FsError::PermissionDenied));
        }
        if offset + data.len() as u64 > m.bytes {
            return Err(MachineError::OutOfBounds);
        }
        if self.mode == SecurityMode::Software && m.fek.is_some() {
            return self.soft_write(core, &m, offset, data);
        }
        let mut run = RegionRun::new();
        let mut pos = 0usize;
        while pos < data.len() {
            let off = offset + pos as u64;
            let page_idx = (off / PAGE_BYTES as u64) as usize;
            let in_page = (off % PAGE_BYTES as u64) as usize;
            let take = (PAGE_BYTES - in_page).min(data.len() - pos);
            let frame = self.resolve_page(core, &m, page_idx)?;
            if self.batching {
                self.write_page_bytes_run(core, frame, in_page, &data[pos..pos + take], &mut run)?;
            } else {
                self.write_page_bytes(core, frame, in_page, &data[pos..pos + take])?;
            }
            pos += take;
        }
        self.fs.grow(m.ino, offset + data.len() as u64);
        Ok(())
    }

    /// Persists a mapped range: `clwb` every covered line, then a fence.
    /// The core waits for the write completions — this is where
    /// write-intensive persistent workloads feel the encryption overhead.
    ///
    /// # Errors
    ///
    /// Mapping or memory-path failures.
    pub fn persist(
        &mut self,
        core: usize,
        map: MapId,
        offset: u64,
        len: u64,
    ) -> Result<(), MachineError> {
        // Persist barriers are the power-cut trigger points of the fault
        // model: an armed injector counts them and may drop power here,
        // before any of this barrier's write-backs reach the media. One
        // branch when disarmed.
        if let Some(inj) = self.ctrl.fault_injector_mut() {
            inj.on_barrier();
        }
        let m = self.mapping(map)?;
        if self.mode == SecurityMode::Software && m.fek.is_some() {
            // `clwb` on a page-cache mapping flushes the DRAM copy only —
            // it is NOT durable and triggers no encryption. This is the
            // broken persistence model the paper warns about; durability
            // requires an explicit msync ([`Machine::msync`]).
            let mut off = offset;
            let end = offset + len;
            while off < end {
                let page = (off / PAGE_BYTES as u64) as usize;
                let in_page = off % PAGE_BYTES as u64;
                if let Some(&pc_base) = self.pc_frames.get(&(m.ino.get(), page)) {
                    let line = LineAddr::new(pc_base + (in_page & !(LINE_BYTES as u64 - 1)));
                    if let Some(wb) = self.hier.clwb(line) {
                        self.ctrl
                            .write_line(self.clocks[core], PhysAddr::new(wb.addr.get()), &wb.data)?;
                    }
                }
                off = (off - in_page) + LINE_BYTES as u64 * ((in_page / LINE_BYTES as u64) + 1);
            }
            self.clocks[core] += FENCE_CYCLES;
            return Ok(());
        }
        if self.batching {
            // `clwb` never touches the controller and every write-back is
            // issued at the same fence-pending clock, so collecting the
            // evictions first and fanning them out as one region write is
            // cycle-identical to the interleaved loop below.
            let mut scratch = std::mem::take(&mut self.persist_scratch);
            scratch.clear();
            let mut off = offset;
            let end = offset + len;
            while off < end {
                let page_idx = (off / PAGE_BYTES as u64) as usize;
                let in_page = off % PAGE_BYTES as u64;
                let vpn_frame = {
                    let vpn = m.base / PAGE_BYTES as u64 + page_idx as u64;
                    self.pt.pte(vpn).map(|p| p.frame)
                };
                if let Some(frame) = vpn_frame {
                    let line = LineAddr::new(frame.get() * PAGE_BYTES as u64 + in_page);
                    if let Some(wb) = self.hier.clwb(line) {
                        scratch.push((PhysAddr::new(wb.addr.get()), wb.data));
                    }
                }
                off = (off - in_page) + LINE_BYTES as u64 * ((in_page / LINE_BYTES as u64) + 1);
            }
            let res = self.ctrl.write_lines_at(self.clocks[core], &scratch);
            scratch.clear();
            self.persist_scratch = scratch;
            self.clocks[core] = res? + FENCE_CYCLES;
            return Ok(());
        }
        let mut fence_at = self.clocks[core];
        let mut off = offset;
        let end = offset + len;
        while off < end {
            let page_idx = (off / PAGE_BYTES as u64) as usize;
            let in_page = off % PAGE_BYTES as u64;
            let vpn_frame = {
                let vpn = m.base / PAGE_BYTES as u64 + page_idx as u64;
                self.pt.pte(vpn).map(|p| p.frame)
            };
            if let Some(frame) = vpn_frame {
                let line = LineAddr::new(frame.get() * PAGE_BYTES as u64 + in_page);
                if let Some(wb) = self.hier.clwb(line) {
                    let done = self
                        .ctrl
                        .write_line(self.clocks[core], PhysAddr::new(wb.addr.get()), &wb.data)?;
                    fence_at = fence_at.max(done);
                }
            }
            off = (off - in_page) + LINE_BYTES as u64 * ((in_page / LINE_BYTES as u64) + 1);
        }
        self.clocks[core] = fence_at + FENCE_CYCLES;
        Ok(())
    }

    /// Durable sync (`msync`/`fsync`): in software mode this is where the
    /// stacked filesystem encrypts dirty pages and writes them back; in
    /// DAX modes it is equivalent to [`Machine::persist`].
    ///
    /// # Errors
    ///
    /// Mapping or memory-path failures.
    pub fn msync(&mut self, core: usize, map: MapId, offset: u64, len: u64) -> Result<(), MachineError> {
        let m = self.mapping(map)?;
        if self.mode == SecurityMode::Software && m.fek.is_some() {
            return self.soft_fsync(core, &m);
        }
        self.persist(core, map, offset, len)
    }

    /// Charges the cost of one file-API system call *if* the machine runs
    /// software encryption — syscall-driven applications (e.g. YCSB's
    /// storage engine) traverse the kernel and the stacked eCryptfs layer
    /// per operation, while under DAX they use direct loads/stores.
    pub fn syscall_overhead(&mut self, core: usize) {
        if self.mode == SecurityMode::Software {
            self.advance(core, self.soft_cfg.syscall_cycles);
        }
    }

    // ------------------------------------------------------------------
    // Heap (general, non-file memory).
    // ------------------------------------------------------------------

    /// Allocates `bytes` of general memory, returning its physical base.
    ///
    /// # Panics
    ///
    /// Panics when the general region is exhausted.
    pub fn heap_alloc(&mut self, bytes: u64) -> u64 {
        let aligned = bytes.div_ceil(LINE_BYTES as u64) * LINE_BYTES as u64;
        let addr = self.heap_next;
        self.heap_next += aligned;
        assert!(
            self.heap_next <= self.opts.general_bytes,
            "general memory exhausted"
        );
        addr
    }

    /// Reads from general memory.
    ///
    /// # Errors
    ///
    /// Memory-path failures.
    pub fn heap_read(&mut self, core: usize, addr: u64, buf: &mut [u8]) -> Result<(), MachineError> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let line = LineAddr::new(a);
            let in_line = (a - line.get()) as usize;
            let take = (LINE_BYTES - in_line).min(buf.len() - pos);
            let data = self.load_line(core, line)?;
            buf[pos..pos + take].copy_from_slice(&data[in_line..in_line + take]);
            pos += take;
        }
        Ok(())
    }

    /// Writes to general memory.
    ///
    /// # Errors
    ///
    /// Memory-path failures.
    pub fn heap_write(&mut self, core: usize, addr: u64, data: &[u8]) -> Result<(), MachineError> {
        let mut pos = 0usize;
        while pos < data.len() {
            let a = addr + pos as u64;
            let line = LineAddr::new(a);
            let in_line = (a - line.get()) as usize;
            let take = (LINE_BYTES - in_line).min(data.len() - pos);
            let mut merged = if take == LINE_BYTES {
                [0u8; LINE_BYTES]
            } else {
                self.load_line(core, line)?
            };
            merged[in_line..in_line + take].copy_from_slice(&data[pos..pos + take]);
            self.store_line(core, line, merged)?;
            pos += take;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Software-encryption (eCryptfs) path.
    // ------------------------------------------------------------------

    fn sw_pad(&mut self, fek: Key128, frame: PageId, block: u8) -> [u8; LINE_BYTES] {
        let aes = self.sw_schedules.get(&fek);
        ctr::line_pad_with(
            aes,
            &PadInput {
                page_id: frame.get(),
                block_in_page: block,
                major: 0,
                minor: 0,
                domain: PadDomain::File,
            },
        )
    }

    fn pc_frame_for(&mut self, ino: Ino, page: usize) -> u64 {
        if let Some(&f) = self.pc_frames.get(&(ino.get(), page)) {
            return f;
        }
        let f = self
            .pc_free
            .pop()
            .unwrap_or_else(|| self.heap_alloc(PAGE_BYTES as u64));
        self.pc_frames.insert((ino.get(), page), f);
        f
    }

    fn pc_release(&mut self, ino: Ino, page: usize) {
        if let Some(f) = self.pc_frames.remove(&(ino.get(), page)) {
            self.pc_free.push(f);
        }
    }

    fn pc_reclaim(&mut self, ino: Ino) {
        let pages: Vec<usize> = self
            .pc_frames
            .keys()
            .filter(|(i, _)| *i == ino.get())
            .map(|(_, p)| *p)
            .collect();
        for p in pages {
            self.pc_release(ino, p);
        }
    }

    /// Copies a file page into the page cache, decrypting in software.
    fn sw_fill_page(&mut self, core: usize, m: &Mapping, page: usize) -> Result<(), MachineError> {
        let fek = m
            .fek
            .ok_or(MachineError::Unsupported("software fill of an unencrypted file"))?;
        let frame = self.resolve_page(core, m, page)?;
        let pc_base = self.pc_frame_for(m.ino, page);
        self.advance(core, self.soft_cfg.fill_overhead_cycles);
        if !self.sw_valid.contains(&(m.ino.get(), page)) {
            // Hole / fresh block: reads as zeroes without touching media.
            for blk in 0..(PAGE_BYTES / LINE_BYTES) as u64 {
                self.store_line(core, LineAddr::new(pc_base + blk * LINE_BYTES as u64), [0u8; LINE_BYTES])?;
            }
            return Ok(());
        }
        // The copy itself streams at memcpy speed: the functional loads
        // and stores below move the bytes (and count as NVM traffic), but
        // the core-visible time is the streaming-copy constant plus the
        // software decryption, not 64 serialized miss latencies.
        let t0 = self.clocks[core];
        for blk in 0..(PAGE_BYTES / LINE_BYTES) as u64 {
            let file_line = LineAddr::new(frame.get() * PAGE_BYTES as u64 + blk * LINE_BYTES as u64);
            let cipher = self.load_line(core, file_line)?;
            let pad = self.sw_pad(fek, frame, blk as u8);
            let mut plain = cipher;
            ctr::xor_in_place(&mut plain, &pad);
            self.store_line(core, LineAddr::new(pc_base + blk * LINE_BYTES as u64), plain)?;
        }
        self.clocks[core] = t0 + PAGE_COPY_CYCLES;
        self.advance(core, self.soft_cfg.page_crypt_cycles());
        Ok(())
    }

    /// Copies a page-cache page back to the file, encrypting in software.
    fn sw_writeback_page(&mut self, core: usize, m: &Mapping, page: usize) -> Result<(), MachineError> {
        let fek = m
            .fek
            .ok_or(MachineError::Unsupported("software writeback of an unencrypted file"))?;
        let frame = self.resolve_page(core, m, page)?;
        let Some(&pc_base) = self.pc_frames.get(&(m.ino.get(), page)) else {
            return Ok(()); // never filled: nothing to write back
        };
        let t0 = self.clocks[core];
        for blk in 0..(PAGE_BYTES / LINE_BYTES) as u64 {
            let plain = self.load_line(core, LineAddr::new(pc_base + blk * LINE_BYTES as u64))?;
            let pad = self.sw_pad(fek, frame, blk as u8);
            let mut cipher = plain;
            ctr::xor_in_place(&mut cipher, &pad);
            let file_line = LineAddr::new(frame.get() * PAGE_BYTES as u64 + blk * LINE_BYTES as u64);
            self.store_line(core, file_line, cipher)?;
            // Write the file line back (eCryptfs write-back). The write is
            // *posted*: fsync waits until the stores reach the persistence
            // domain (the controller), not until the PCM array commits.
            if let Some(wb) = self.hier.clwb(file_line) {
                self.ctrl
                    .write_line(self.clocks[core], PhysAddr::new(wb.addr.get()), &wb.data)?;
            }
        }
        self.clocks[core] = t0 + PAGE_COPY_CYCLES;
        self.advance(core, self.soft_cfg.page_crypt_cycles());
        self.sw_valid.insert((m.ino.get(), page));
        Ok(())
    }

    fn sw_touch(&mut self, core: usize, m: &Mapping, page: usize, write: bool) -> Result<u64, MachineError> {
        let outcome = self.page_cache.touch(m.ino, page, write);
        if let Some((v_ino, v_page, dirty)) = outcome.evicted {
            if dirty {
                // The victim belongs to some open mapping of v_ino.
                if let Some(vm) = self.mappings.values().copied().find(|mm| mm.ino == v_ino) {
                    self.sw_writeback_page(core, &vm, v_page)?;
                }
            }
            self.pc_release(v_ino, v_page);
        }
        if outcome.fill {
            self.sw_fill_page(core, m, page)?;
        }
        Ok(self.pc_frame_for(m.ino, page))
    }

    fn soft_read(
        &mut self,
        core: usize,
        m: &Mapping,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), MachineError> {
        // mmap semantics: cached pages are accessed directly; only faults
        // (fills) and msync pay the software stack.
        let mut pos = 0usize;
        while pos < buf.len() {
            let off = offset + pos as u64;
            let page = (off / PAGE_BYTES as u64) as usize;
            let in_page = (off % PAGE_BYTES as u64) as usize;
            let take = (PAGE_BYTES - in_page).min(buf.len() - pos);
            let pc_base = self.sw_touch(core, m, page, false)?;
            let mut tmp = vec![0u8; take];
            self.heap_read(core, pc_base + in_page as u64, &mut tmp)?;
            buf[pos..pos + take].copy_from_slice(&tmp);
            pos += take;
        }
        Ok(())
    }

    fn soft_write(
        &mut self,
        core: usize,
        m: &Mapping,
        offset: u64,
        data: &[u8],
    ) -> Result<(), MachineError> {
        let mut pos = 0usize;
        while pos < data.len() {
            let off = offset + pos as u64;
            let page = (off / PAGE_BYTES as u64) as usize;
            let in_page = (off % PAGE_BYTES as u64) as usize;
            let take = (PAGE_BYTES - in_page).min(data.len() - pos);
            let pc_base = self.sw_touch(core, m, page, true)?;
            self.heap_write(core, pc_base + in_page as u64, &data[pos..pos + take])?;
            pos += take;
        }
        self.fs.grow(m.ino, offset + data.len() as u64);
        Ok(())
    }

    fn soft_fsync(&mut self, core: usize, m: &Mapping) -> Result<(), MachineError> {
        self.advance(core, self.soft_cfg.syscall_cycles);
        let dirty = self.page_cache.clean_file(m.ino);
        for page in dirty {
            self.sw_writeback_page(core, m, page)?;
        }
        self.clocks[core] += FENCE_CYCLES;
        Ok(())
    }

    fn fs_meta_base(&self) -> u64 {
        self.opts.general_bytes
    }

    /// Writes one journal record for a metadata-mutating operation —
    /// ext4-DAX journals metadata synchronously, so every create/unlink/
    /// chmod/rename/extent-allocation pays a small durable write.
    fn journal_op(&mut self, core: usize, op: u8) -> Result<(), MachineError> {
        self.advance(core, JOURNAL_CYCLES);
        let ring_base = self.fs_meta_base() + FS_IMAGE_PAGES * PAGE_BYTES as u64;
        let ring_lines = (FS_META_PAGES - FS_IMAGE_PAGES) * (PAGE_BYTES / LINE_BYTES) as u64;
        let line = LineAddr::new(ring_base + (self.journal_cursor % ring_lines) * LINE_BYTES as u64);
        self.journal_cursor += 1;
        let at = self.elapsed();
        self.tracer.record(at, TraceKind::Journal { op });
        let mut record = [0u8; LINE_BYTES];
        record[0] = op;
        record[1..9].copy_from_slice(&self.journal_cursor.to_le_bytes());
        record[9..17].copy_from_slice(&self.elapsed().get().to_le_bytes());
        self.store_line(core, line, record)?;
        if let Some(wb) = self.hier.clwb(line) {
            let done = self
                .ctrl
                .write_line(self.clocks[core], PhysAddr::new(wb.addr.get()), &wb.data)?;
            self.clocks[core] = self.clocks[core].max(done) + FENCE_CYCLES;
        }
        Ok(())
    }

    /// Writes the serialized filesystem metadata into its reserved
    /// on-media area (the `umount`-time full image; incremental durability
    /// between syncs comes from the journal).
    ///
    /// # Errors
    ///
    /// Memory-path failures; panics if the image outgrows the reserved
    /// area.
    pub fn sync_fs(&mut self, core: usize) -> Result<(), MachineError> {
        let image = self.fs.serialize();
        let capacity = (FS_IMAGE_PAGES * PAGE_BYTES as u64 - 64) as usize;
        assert!(
            image.len() <= capacity,
            "filesystem image ({} B) exceeds the reserved area ({capacity} B)",
            image.len()
        );
        let base = self.fs_meta_base();
        self.heap_write(core, base, &(image.len() as u64).to_le_bytes())?;
        self.heap_write(core, base + 64, &image)?;
        // Persist the whole image range.
        let mut off = 0u64;
        let end = 64 + image.len() as u64;
        let mut fence_at = self.clocks[core];
        while off < end {
            let line = LineAddr::new(base + off);
            if let Some(wb) = self.hier.clwb(line) {
                let done = self
                    .ctrl
                    .write_line(self.clocks[core], PhysAddr::new(wb.addr.get()), &wb.data)?;
                fence_at = fence_at.max(done);
            }
            off += LINE_BYTES as u64;
        }
        self.clocks[core] = fence_at + FENCE_CYCLES;
        Ok(())
    }

    /// Mounts the filesystem from its on-media image, replacing the
    /// in-memory state (used after module transfer, and usable after a
    /// crash to prove the image is self-contained).
    ///
    /// # Errors
    ///
    /// Memory-path failures or a corrupt image.
    pub fn mount_fs(&mut self, core: usize) -> Result<(), MachineError> {
        let base = self.fs_meta_base();
        let mut len_bytes = [0u8; 8];
        self.heap_read(core, base, &mut len_bytes)?;
        let len = u64::from_le_bytes(len_bytes) as usize;
        let capacity = (FS_IMAGE_PAGES * PAGE_BYTES as u64 - 64) as usize;
        if len == 0 || len > capacity {
            return Err(MachineError::Fs(FsError::InvalidArgument(
                "no filesystem image on media",
            )));
        }
        let mut image = vec![0u8; len];
        self.heap_read(core, base + 64, &mut image)?;
        self.fs = DaxFs::deserialize(&image)?;
        Ok(())
    }

    /// Copies `src` into a new encrypted file `dst` *through the
    /// processor* (Section VI, "Copying or Moving Files Within Same
    /// Device"): every line is decrypted on the way in and re-encrypted
    /// under the destination's own key and counters on the way out, so
    /// spatial uniqueness of the IVs is preserved and no pad is ever
    /// reused.
    ///
    /// # Errors
    ///
    /// Filesystem or memory-path failures.
    #[allow(clippy::too_many_arguments)] // mirrors the full open()+create() surface
    pub fn copy_file(
        &mut self,
        core: usize,
        user: UserId,
        groups: &[GroupId],
        src: &str,
        dst: &str,
        src_passphrase: Option<&str>,
        dst_passphrase: Option<&str>,
    ) -> Result<FileHandle, MachineError> {
        let src_handle = self.open(user, groups, src, AccessKind::Read, src_passphrase)?;
        let (size, group) = {
            let inode = self.fs.inode(src_handle.ino).ok_or(FsError::NotFound)?;
            (inode.size(), inode.group())
        };
        let dst_handle = self.create(user, group, dst, Mode::PRIVATE, dst_passphrase)?;
        let src_map = self.mmap(&src_handle)?;
        let dst_map = self.mmap(&dst_handle)?;
        let mut buf = vec![0u8; PAGE_BYTES];
        let mut off = 0u64;
        while off < size {
            let take = (size - off).min(PAGE_BYTES as u64) as usize;
            self.read(core, src_map, off, &mut buf[..take])?;
            self.write(core, dst_map, off, &buf[..take])?;
            self.persist(core, dst_map, off, take as u64)?;
            off += take as u64;
        }
        self.munmap(core, src_map)?;
        self.munmap(core, dst_map)?;
        Ok(dst_handle)
    }

    /// Exports this machine's NVM module for transfer to another machine
    /// (Section VI): flushes everything, spills the OTT, and splits the
    /// machine into the physically travelling parts and the secret
    /// envelope.
    ///
    /// # Errors
    ///
    /// Flush failures.
    pub fn export_module(mut self) -> Result<(ModuleEnvelope, TransferredModule), MachineError> {
        self.shutdown_flush()?;
        let envelope = self.ctrl.export_module(self.elapsed())?;
        let (nvm, ecc) = self.ctrl.into_media();
        Ok((
            envelope,
            TransferredModule {
                nvm,
                ecc,
                opts: self.opts,
            },
        ))
    }

    /// Builds a machine around a transferred module on a *new* processor,
    /// authenticating the media against the envelope's root digest.
    ///
    /// # Errors
    ///
    /// [`crate::IntegrityError::Tamper`] (wrapped in
    /// [`MemError::Integrity`]) if the module was modified in transit.
    pub fn import_module(
        envelope: &ModuleEnvelope,
        module: TransferredModule,
    ) -> Result<Self, MachineError> {
        let opts = module.opts;
        let data_bytes = opts.general_bytes + opts.pmem_bytes;
        let layout = MetadataLayout::new(data_bytes, opts.ott_spill_bytes);
        let ctrl = MemoryController::import_module(
            layout,
            &opts.config.security,
            envelope,
            module.nvm,
            module.ecc,
        )?;
        // `assemble` formats a placeholder filesystem; the real state is
        // mounted from the on-media image below.
        let mut machine = Machine::assemble(SecurityMode::FsEncr, opts, ctrl, envelope.mem_key);
        machine.mount_fs(0)?;
        Ok(machine)
    }

    // ------------------------------------------------------------------
    // Lifecycle: shutdown, crash, recovery.
    // ------------------------------------------------------------------

    fn flush_hierarchy(&mut self) -> Result<(), MemError> {
        let dirty = self.hier.flush_all();
        let mut t = self.elapsed();
        for wb in dirty {
            t = self
                .ctrl
                .write_line(t, PhysAddr::new(wb.addr.get()), &wb.data)?;
        }
        for c in &mut self.clocks {
            *c = t.max(*c);
        }
        Ok(())
    }

    /// Clean shutdown: flushes caches and metadata.
    ///
    /// # Errors
    ///
    /// Memory-path failures during the flush.
    pub fn shutdown_flush(&mut self) -> Result<(), MachineError> {
        self.sync_fs(0)?;
        self.flush_hierarchy()?;
        let t = self.ctrl.flush(self.elapsed());
        for c in &mut self.clocks {
            *c = t;
        }
        Ok(())
    }

    /// Power loss: all volatile state (CPU caches, metadata cache, page
    /// cache) vanishes; page tables and mappings die with the processes.
    pub fn crash(&mut self) {
        let at = self.elapsed();
        self.tracer.record(at, TraceKind::Crash);
        self.hier.drop_all();
        self.ctrl.crash();
        self.pc_frames.clear();
        self.pc_free.clear();
        self.page_cache = PageCacheModel::new(self.soft_cfg.page_cache_pages);
        self.pt = PageTable::new();
        self.mappings.clear();
        for tlb in &mut self.tlbs {
            tlb.flush();
        }
    }

    /// Post-crash recovery: Osiris counter repair + Merkle rebuild.
    pub fn recover(&mut self) -> RecoveryReport {
        let report = self.ctrl.recover();
        let at = self.elapsed();
        self.tracer.record(
            at,
            TraceKind::Recover {
                repaired: report.repaired,
                unrecoverable: report.unrecoverable,
            },
        );
        report
    }
}
