//! **FsEncr** — hardware-assisted filesystem encryption for direct-access
//! NVM filesystems.
//!
//! This crate is the paper's contribution (Zubair, Mohaisen, Awad,
//! HPCA 2022): a memory controller that layers per-file counter-mode
//! encryption *on top of* general memory encryption without giving up DAX.
//! The pieces:
//!
//! * [`OpenTunnelTable`] — the on-chip key table: (Group ID, File ID,
//!   128-bit key) entries, 8 x 128 associative capacity, 20-cycle lookup.
//! * [`OttSpill`] — the encrypted, Merkle-covered memory region that
//!   overflowing OTT entries spill to, keyed by an OTT key that never
//!   leaves the processor.
//! * [`MemoryController`] — the datapath of Figure 7: the DF-bit routes a
//!   request through one pad (`OTP_mem`) or two (`XOR` with `OTP_file`);
//!   pads are generated in parallel with the data fetch; counter blocks
//!   come from the [`fsencr_secmem::MetadataSystem`]; writes increment
//!   minors, handle overflow re-encryption, and keep Osiris stop-loss
//!   persistence honest. Plus the operational surface of Section VI:
//!   secure deletion, key rotation, boot-time authentication, crash
//!   recovery.
//! * [`Machine`] — the full simulated system: workload threads, cache
//!   hierarchy, the controller, the NVM device and the DAX filesystem,
//!   with the software-encryption baseline (eCryptfs model) selectable for
//!   the Figure 3 comparison.
//!
//! # Quick start
//!
//! ```
//! use fsencr::{Machine, MachineOpts, SecurityMode};
//! use fsencr_fs::{GroupId, Mode, UserId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Machine::new(MachineOpts::small_test(), SecurityMode::FsEncr);
//! let user = UserId::new(1);
//! let h = m.create(user, GroupId::new(1), "data.bin", Mode::PRIVATE, Some("pw"))?;
//! let map = m.mmap(&h)?;
//! m.write(0, map, 0, b"hello, persistent world")?;
//! m.persist(0, map, 0, 23)?;
//! let mut buf = [0u8; 23];
//! m.read(0, map, 0, &mut buf)?;
//! assert_eq!(&buf, b"hello, persistent world");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod machine;
pub mod ott;
pub mod plane;
pub mod security;
pub mod snapshot;
pub mod spill;
pub mod tlb;
pub mod trace;

pub use controller::batch::RegionRun;
pub use controller::{CtrlStats, IntegrityError, MemError, MemoryController, ModuleEnvelope};
pub use machine::{Machine, MachineOpts, MapId, Preset, RunStats, SecurityMode};
pub use plane::{FaultPlane, InspectPlane, ModuleFault, ModuleInspect};
pub use snapshot::StatsSnapshot;
pub use ott::{OpenTunnelTable, OttStats};
pub use spill::OttSpill;
