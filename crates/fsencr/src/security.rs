//! Attacker models and the Table I vulnerability analysis.
//!
//! The simulator is functional, so the paper's security claims can be
//! *executed* rather than argued: an attacker here is a procedure that
//! reads the raw DIMM contents (and optionally holds some subset of keys)
//! and tries to locate known plaintext. Table I's three system models map
//! onto the machine's security modes:
//!
//! * **System A** — memory encryption only ([`super::SecurityMode::MemoryOnly`]).
//! * **System B** — one additional key for the whole filesystem
//!   (modelled as FsEncr with every file sharing a single passphrase-key).
//! * **System C** — FsEncr proper: dedicated keys per file.

use fsencr_crypto::{ctr, Aes128, Key128, PadDomain, PadInput};
use fsencr_nvm::{PageId, PhysAddr, LINE_BYTES, PAGE_BYTES};
use fsencr_secmem::{Fecb, Mecb};

use crate::machine::Machine;

/// Scans the raw media for `needle`. This is attacker X with *no* keys:
/// the cold-boot / stolen-DIMM scan.
pub fn media_contains(machine: &Machine, needle: &[u8]) -> bool {
    assert!(!needle.is_empty() && needle.len() <= PAGE_BYTES);
    let storage = machine.controller().nvm().storage();
    let mut frames: Vec<u64> = storage.frames().collect();
    frames.sort_unstable();
    for frame in frames {
        let page = storage.snapshot_page(PageId::new(frame));
        if page.windows(needle.len()).any(|w| w == needle) {
            return true;
        }
    }
    false
}

/// Attacker who has obtained the memory-encryption key (and possibly some
/// file keys): decrypts every data line using the on-media counters —
/// exactly what booting a different OS achieves once the memory key is
/// broken — and scans for `needle`.
pub fn attacker_decrypts(machine: &Machine, mem_key: &Key128, file_keys: &[Key128], needle: &[u8]) -> bool {
    assert!(!needle.is_empty() && needle.len() <= PAGE_BYTES);
    let ctrl = machine.controller();
    let storage = ctrl.nvm().storage();
    let mem_aes = Aes128::new(mem_key);
    let file_aes: Vec<Aes128> = file_keys.iter().map(Aes128::new).collect();

    let layout_data_bytes = machine.opts().general_bytes + machine.opts().pmem_bytes;
    let mut frames: Vec<u64> = storage
        .frames()
        .filter(|f| (f * PAGE_BYTES as u64) < layout_data_bytes)
        .collect();
    frames.sort_unstable();

    for frame in frames {
        let page = PageId::new(frame);
        // The attacker reads counters straight from the media — they are
        // stored in plaintext (integrity-protected, not secret).
        let meta_base = layout_data_bytes;
        let mecb_raw = read_line_at(machine, meta_base + frame * 128);
        let fecb_raw = read_line_at(machine, meta_base + frame * 128 + 64);
        let mecb = Mecb::from_bytes(&mecb_raw);
        let fecb = Fecb::from_bytes(&fecb_raw);
        let is_file_page = fecb.gid() != 0 || fecb.fid() != 0;

        // Strip the memory-encryption layer.
        let mut mem_plain = storage.snapshot_page(page);
        for blk in 0..(PAGE_BYTES / LINE_BYTES) {
            let pad = ctr::line_pad_with(
                &mem_aes,
                &PadInput {
                    page_id: frame,
                    block_in_page: blk as u8,
                    major: mecb.major(),
                    minor: mecb.minor(blk),
                    domain: PadDomain::Memory,
                },
            );
            ctr::xor_in_place(&mut mem_plain[blk * 64..(blk + 1) * 64], &pad);
        }
        if mem_plain.windows(needle.len()).any(|w| w == needle) {
            return true;
        }
        if is_file_page {
            // Additionally try every file key the attacker holds.
            for aes in &file_aes {
                let mut attempt = mem_plain;
                for blk in 0..(PAGE_BYTES / LINE_BYTES) {
                    let fpad = ctr::line_pad_with(
                        aes,
                        &PadInput {
                            page_id: frame,
                            block_in_page: blk as u8,
                            major: fecb.major() as u64,
                            minor: fecb.minor(blk),
                            domain: PadDomain::File,
                        },
                    );
                    ctr::xor_in_place(&mut attempt[blk * 64..(blk + 1) * 64], &fpad);
                }
                if attempt.windows(needle.len()).any(|w| w == needle) {
                    return true;
                }
            }
        }
    }
    false
}

fn read_line_at(machine: &Machine, addr: u64) -> [u8; LINE_BYTES] {
    machine.controller().nvm().peek_line(PhysAddr::new(addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineOpts, SecurityMode};
    use fsencr_fs::{GroupId, Mode, UserId};

    const SECRET: &[u8] = b"TOP-SECRET-PAYROLL-RECORD-0001";

    fn machine_with_secret(mode: SecurityMode) -> (Machine, Key128) {
        let mut m = Machine::new(MachineOpts::small_test(), mode);
        let user = UserId::new(1);
        let h = m
            .create(user, GroupId::new(1), "payroll", Mode::PRIVATE, Some("pw"))
            .unwrap();
        let fek = h.fek.unwrap();
        let map = m.mmap(&h).unwrap();
        m.write(0, map, 0, SECRET).unwrap();
        m.persist(0, map, 0, SECRET.len() as u64).unwrap();
        m.shutdown_flush().unwrap();
        (m, fek)
    }

    #[test]
    fn unencrypted_media_leaks_plaintext() {
        let (m, _) = machine_with_secret(SecurityMode::Unencrypted);
        assert!(media_contains(&m, SECRET), "plain DAX leaves plaintext on media");
    }

    #[test]
    fn encrypted_media_hides_plaintext() {
        for mode in [SecurityMode::MemoryOnly, SecurityMode::FsEncr] {
            let (m, _) = machine_with_secret(mode);
            assert!(!media_contains(&m, SECRET), "{mode}: plaintext leaked");
        }
    }

    #[test]
    fn table1_system_a_falls_with_memory_key() {
        // System A: memory encryption only. Memory key revealed => data
        // exposed.
        let (m, _) = machine_with_secret(SecurityMode::MemoryOnly);
        let mem_key = m.mem_key();
        assert!(attacker_decrypts(&m, &mem_key, &[], SECRET));
    }

    #[test]
    fn table1_system_c_survives_memory_key() {
        // System C (FsEncr): memory key alone is NOT enough for file data.
        let (m, _) = machine_with_secret(SecurityMode::FsEncr);
        let mem_key = m.mem_key();
        assert!(!attacker_decrypts(&m, &mem_key, &[], SECRET));
    }

    #[test]
    fn table1_system_c_falls_with_both_keys() {
        // ... but memory key + the file's own key exposes it, as Table I's
        // last row concedes.
        let (m, fek) = machine_with_secret(SecurityMode::FsEncr);
        let mem_key = m.mem_key();
        let keys = vec![fek];
        let leaked = attacker_decrypts(&m, &mem_key, &keys, SECRET);
        assert!(leaked);
    }

    #[test]
    fn table1_other_files_key_does_not_help() {
        // Per-file keys contain the blast radius: a *different* file's key
        // plus the memory key still reveals nothing about this file.
        let (mut m, _fek) = machine_with_secret(SecurityMode::FsEncr);
        let user = UserId::new(1);
        let h2 = m
            .create(user, GroupId::new(1), "other", Mode::PRIVATE, Some("pw2"))
            .unwrap();
        let other_key = h2.fek.unwrap();
        let map = m.mmap(&h2).unwrap();
        m.write(0, map, 0, b"unrelated-file-content").unwrap();
        m.persist(0, map, 0, 22).unwrap();
        m.shutdown_flush().unwrap();
        let mem_key = m.mem_key();
        let keys = vec![other_key];
        assert!(!attacker_decrypts(&m, &mem_key, &keys, SECRET));
    }
}
