//! One coherent, diffable snapshot of every datapath counter.
//!
//! Replaces the `stats()` / `ott_stats()` / `meta_stats()` /
//! `meta_hit_rate()` accessor sprawl: a [`StatsSnapshot`] captures the
//! controller, OTT, metadata-system, NVM and machine-level counters in a
//! single `Copy` value. Measurement is reset-free — take a snapshot at
//! the start of the window, another at the end, and [`StatsSnapshot::delta`]
//! yields exactly the counters accumulated in between (including the
//! read-latency histogram, diffed bucket-wise).
//!
//! # Examples
//!
//! ```
//! use fsencr::snapshot::StatsSnapshot;
//!
//! let mut before = StatsSnapshot::default();
//! before.reads = 10;
//! let mut after = before;
//! after.reads = 25;
//! assert_eq!(after.delta(&before).reads, 15);
//! ```

use fsencr_sim::{stats::hit_rate, Histogram};

/// Every datapath counter at one instant, as one serializable value.
///
/// All integer fields are monotonic event counts; deltas of snapshots
/// are therefore exact window measurements. The machine-level fields
/// (`cycles`, `tlb_*`) are zero in snapshots taken directly from a bare
/// [`crate::MemoryController`]; [`crate::machine::Machine::snapshot`]
/// fills them in.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSnapshot {
    // -- controller ----------------------------------------------------
    /// Data-line reads served.
    pub reads: u64,
    /// Data-line writes served.
    pub writes: u64,
    /// Reads/writes that took the file-engine (dual-pad) path.
    pub file_accesses: u64,
    /// Page re-encryptions triggered by minor-counter overflow.
    pub overflow_reencryptions: u64,
    /// Pages shredded.
    pub shredded_pages: u64,
    /// Latency distribution of data-line reads (request to plaintext).
    pub read_latency: Histogram,
    // -- OTT -----------------------------------------------------------
    /// OTT lookups that found the key on-chip.
    pub ott_hits: u64,
    /// OTT lookups that fell back to the spill region.
    pub ott_misses: u64,
    /// OTT entries pushed out to the spill region.
    pub ott_evictions: u64,
    // -- metadata system -----------------------------------------------
    /// Metadata-cache hits (all partitions, all request kinds).
    pub meta_cache_hits: u64,
    /// Metadata-cache misses (all partitions, all request kinds).
    pub meta_cache_misses: u64,
    /// Leaf (counter/spilled-OTT) lookups that hit the metadata cache.
    pub meta_leaf_hits: u64,
    /// Leaf lookups that missed and fetched from NVM.
    pub meta_leaf_misses: u64,
    /// Merkle nodes fetched from NVM.
    pub meta_node_fetches: u64,
    /// Dirty metadata lines written back on eviction.
    pub meta_evict_writebacks: u64,
    /// Osiris stop-loss write-throughs.
    pub meta_osiris_persists: u64,
    /// MECB leaf hits.
    pub meta_mecb_hits: u64,
    /// MECB leaf misses.
    pub meta_mecb_misses: u64,
    /// FECB leaf hits.
    pub meta_fecb_hits: u64,
    /// FECB leaf misses.
    pub meta_fecb_misses: u64,
    /// Spilled-OTT leaf hits.
    pub meta_spill_hits: u64,
    /// Spilled-OTT leaf misses.
    pub meta_spill_misses: u64,
    /// Merkle-node lookups served by a trusted on-chip copy.
    pub meta_node_hits: u64,
    /// Merkle-node lookups that fetched from NVM.
    pub meta_node_misses: u64,
    /// Verification climbs started.
    pub meta_verify_climbs: u64,
    /// Total tree levels walked across all climbs.
    pub meta_verify_levels: u64,
    /// Parent-digest updates on the write-back/persist path.
    pub meta_update_bumps: u64,
    // -- NVM -----------------------------------------------------------
    /// Line reads that reached the device.
    pub nvm_reads: u64,
    /// Line writes that reached the device.
    pub nvm_writes: u64,
    /// Device accesses that hit an open row buffer.
    pub nvm_row_hits: u64,
    /// Device accesses that paid a row activation.
    pub nvm_row_misses: u64,
    // -- machine level -------------------------------------------------
    /// Simulated cycles elapsed (max over cores) at snapshot time.
    pub cycles: u64,
    /// TLB hits summed over cores.
    pub tlb_hits: u64,
    /// TLB misses summed over cores.
    pub tlb_misses: u64,
}

impl StatsSnapshot {
    /// Counters accumulated between `base` (earlier) and `self` (later).
    /// Saturating, so a mismatched baseline degrades to zeros instead of
    /// wrapping.
    #[must_use]
    pub fn delta(&self, base: &StatsSnapshot) -> StatsSnapshot {
        let mut out = *self;
        for (slot, b) in field_slots(&mut out).into_iter().zip(field_values(base)) {
            *slot = slot.saturating_sub(b);
        }
        out.read_latency = self.read_latency.delta(&base.read_latency);
        out
    }

    /// Accumulates `other` into `self`, field by field, including the
    /// read-latency histogram. Used by epoch replay to stitch per-epoch
    /// window deltas back into one figure-equivalent measurement.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        for (slot, v) in field_slots(self).into_iter().zip(field_values(other)) {
            *slot = slot.saturating_add(v);
        }
        self.read_latency.merge(&other.read_latency);
    }

    /// Serializes every counter (declaration order) plus the histogram.
    pub fn snap_save(&self, enc: &mut fsencr_snapshot::Enc) {
        for v in field_values(self) {
            enc.put_u64(v);
        }
        self.read_latency.snap_save(enc);
    }

    /// Restores a snapshot from [`StatsSnapshot::snap_save`] bytes.
    pub fn snap_load(
        dec: &mut fsencr_snapshot::Dec<'_>,
    ) -> Result<StatsSnapshot, fsencr_snapshot::SnapError> {
        let mut out = StatsSnapshot::default();
        for slot in field_slots(&mut out) {
            *slot = dec.get_u64()?;
        }
        out.read_latency = Histogram::snap_load(dec)?;
        Ok(out)
    }

    /// Metadata-cache hit rate over this snapshot's window.
    pub fn meta_hit_rate(&self) -> f64 {
        hit_rate(self.meta_cache_hits, self.meta_cache_misses)
    }

    /// OTT hit rate over this snapshot's window.
    pub fn ott_hit_rate(&self) -> f64 {
        hit_rate(self.ott_hits, self.ott_misses)
    }

    /// TLB hit rate over this snapshot's window.
    pub fn tlb_hit_rate(&self) -> f64 {
        hit_rate(self.tlb_hits, self.tlb_misses)
    }

    /// Every integer counter as stable `(name, value)` rows, in a fixed
    /// order (the struct declaration order). The read-latency histogram
    /// is summarized by its count and p50/p99 bounds.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<(&'static str, u64)> = field_names()
            .iter()
            .copied()
            .zip(field_values(self))
            .collect();
        rows.push(("read_latency_count", self.read_latency.count()));
        rows.push(("read_p50", self.read_latency.percentile(0.5)));
        rows.push(("read_p99", self.read_latency.percentile(0.99)));
        rows
    }

    /// Renders the snapshot as a small, dependency-free JSON object with
    /// one key per counter row — stable across runs by construction.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.rows().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  \"");
            out.push_str(name);
            out.push_str("\": ");
            out.push_str(&value.to_string());
        }
        out.push_str("\n}\n");
        out
    }
}

/// Field order shared by [`field_names`], [`field_values`] and the
/// mutable zip used by `delta` — keep all three in sync.
macro_rules! snapshot_fields {
    ($m:ident) => {
        $m!(
            reads,
            writes,
            file_accesses,
            overflow_reencryptions,
            shredded_pages,
            ott_hits,
            ott_misses,
            ott_evictions,
            meta_cache_hits,
            meta_cache_misses,
            meta_leaf_hits,
            meta_leaf_misses,
            meta_node_fetches,
            meta_evict_writebacks,
            meta_osiris_persists,
            meta_mecb_hits,
            meta_mecb_misses,
            meta_fecb_hits,
            meta_fecb_misses,
            meta_spill_hits,
            meta_spill_misses,
            meta_node_hits,
            meta_node_misses,
            meta_verify_climbs,
            meta_verify_levels,
            meta_update_bumps,
            nvm_reads,
            nvm_writes,
            nvm_row_hits,
            nvm_row_misses,
            cycles,
            tlb_hits,
            tlb_misses
        )
    };
}

fn field_names() -> &'static [&'static str] {
    macro_rules! names {
        ($($f:ident),*) => { &[$(stringify!($f)),*] };
    }
    snapshot_fields!(names)
}

fn field_values(s: &StatsSnapshot) -> Vec<u64> {
    macro_rules! values {
        ($($f:ident),*) => { vec![$(s.$f),*] };
    }
    snapshot_fields!(values)
}

fn field_slots(s: &mut StatsSnapshot) -> Vec<&mut u64> {
    macro_rules! slots {
        ($($f:ident),*) => { vec![$(&mut s.$f),*] };
    }
    snapshot_fields!(slots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_every_field() {
        let mut before = StatsSnapshot::default();
        let mut after = StatsSnapshot::default();
        // Give every counter a distinct before/after pair.
        for (i, slot) in field_slots(&mut before).into_iter().enumerate() {
            *slot = i as u64;
        }
        for (i, slot) in field_slots(&mut after).into_iter().enumerate() {
            *slot = 10 + 3 * i as u64;
        }
        before.read_latency.record(100);
        after.read_latency = before.read_latency;
        after.read_latency.record(5000);

        let d = after.delta(&before);
        for (i, v) in field_values(&d).into_iter().enumerate() {
            assert_eq!(v, 10 + 2 * i as u64, "field {}", field_names()[i]);
        }
        assert_eq!(d.read_latency.count(), 1);
        assert_eq!(d.read_latency.percentile(1.0), 8192);
    }

    #[test]
    fn delta_saturates_on_mismatched_baseline() {
        let mut stale = StatsSnapshot::default();
        stale.reads = 100;
        let fresh = StatsSnapshot::default();
        assert_eq!(fresh.delta(&stale).reads, 0);
    }

    #[test]
    fn rates_follow_the_window() {
        let mut s = StatsSnapshot::default();
        s.meta_cache_hits = 3;
        s.meta_cache_misses = 1;
        s.ott_hits = 1;
        s.ott_misses = 1;
        s.tlb_hits = 9;
        s.tlb_misses = 1;
        assert_eq!(s.meta_hit_rate(), 0.75);
        assert_eq!(s.ott_hit_rate(), 0.5);
        assert_eq!(s.tlb_hit_rate(), 0.9);
    }

    #[test]
    fn rows_and_json_cover_every_field() {
        let s = StatsSnapshot::default();
        let rows = s.rows();
        assert_eq!(rows.len(), field_names().len() + 3);
        let json = s.to_json();
        for name in field_names() {
            assert!(json.contains(&format!("\"{name}\"")), "{name} missing");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Byte-stable.
        assert_eq!(json, s.to_json());
    }
}
