//! Deterministic pseudo-random number generation.
//!
//! Lower-level crates need small amounts of randomness (hash seeds, workload
//! address streams) without pulling an external dependency below the
//! workloads layer. [`SplitMix64`] is the classic 64-bit mixer from Steele,
//! Lea and Flood — tiny, fast, and statistically solid for simulation use.

/// SplitMix64 pseudo-random number generator.
///
/// The same seed always produces the same stream, which keeps every
/// experiment in the workspace reproducible.
///
/// # Examples
///
/// ```
/// use fsencr_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the current internal state; `SplitMix64::new(state)`
    /// reconstructs the generator exactly (used to persist RNG state
    /// across filesystem remounts so key generation never repeats).
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift reduction, which is unbiased enough for
    /// simulation workloads.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = SplitMix64::new(42);
        a.next_u64();
        a.next_u64();
        let mut b = SplitMix64::new(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_stream() {
        // Reference values for SplitMix64 seeded with 0 (from the public
        // domain reference implementation).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(1234);
        let mut b = SplitMix64::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(1235);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
        // bound=1 must always return 0
        for _ in 0..10 {
            assert_eq!(rng.next_below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Extremely unlikely to be all zero after filling.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
