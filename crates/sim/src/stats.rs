//! Lightweight statistics primitives.
//!
//! Components keep strongly-typed stats structs built from [`Counter`]s and
//! expose them uniformly through [`StatSource`], which the benchmark harness
//! uses to print tables without knowing any component's internals.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use fsencr_sim::Counter;
///
/// let mut reads = Counter::new();
/// reads.incr();
/// reads.add(4);
/// assert_eq!(reads.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Ratio helper: `hits / (hits + misses)`, or 0.0 when empty.
///
/// # Examples
///
/// ```
/// use fsencr_sim::stats::hit_rate;
/// assert_eq!(hit_rate(3, 1), 0.75);
/// assert_eq!(hit_rate(0, 0), 0.0);
/// ```
pub fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Throughput helper: `events` per wall-clock second over `wall`, or 0.0
/// when no time elapsed (so cold/instant measurements stay finite).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use fsencr_sim::stats::per_second;
/// assert_eq!(per_second(500, Duration::from_millis(250)), 2000.0);
/// assert_eq!(per_second(500, Duration::ZERO), 0.0);
/// ```
pub fn per_second(events: u64, wall: std::time::Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        events as f64 / secs
    }
}

/// Uniform reporting interface for component statistics.
///
/// Implementors return `(name, value)` rows; the harness prefixes them with
/// the component name and prints them as a table.
pub trait StatSource {
    /// Stable, human-readable rows describing this component's counters.
    fn stat_rows(&self) -> Vec<(String, u64)>;
}

/// A running mean/min/max aggregate for sampled values (e.g. latencies).
///
/// # Examples
///
/// ```
/// use fsencr_sim::stats::Aggregate;
///
/// let mut lat = Aggregate::new();
/// lat.record(10);
/// lat.record(30);
/// assert_eq!(lat.count(), 2);
/// assert_eq!(lat.mean(), 20.0);
/// assert_eq!(lat.min(), Some(10));
/// assert_eq!(lat.max(), Some(30));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Aggregate {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Aggregate {
    /// Creates an empty aggregate.
    pub const fn new() -> Self {
        Aggregate {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A power-of-two-bucketed latency histogram.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)`; bucket 0 holds zero.
/// [`Histogram::percentile`] reports the upper bound of the bucket holding
/// the quantile sample. Fixed storage keeps it `Copy`, so components can
/// embed it in their stats structs.
///
/// # Examples
///
/// ```
/// use fsencr_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [60, 70, 130, 300] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.5) >= 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 40],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; 40],
            count: 0,
            sum: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(39)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the q-quantile sample, or 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << 39
    }

    /// Bucket-wise difference `self - base`: the histogram of samples
    /// recorded after `base` was captured. Counts saturate at zero, so a
    /// stale baseline degrades to an empty delta instead of wrapping.
    ///
    /// # Examples
    ///
    /// ```
    /// use fsencr_sim::stats::Histogram;
    ///
    /// let mut h = Histogram::new();
    /// h.record(100);
    /// let base = h;
    /// h.record(5000);
    /// let d = h.delta(&base);
    /// assert_eq!(d.count(), 1);
    /// assert_eq!(d.percentile(0.5), 8192);
    /// ```
    #[must_use]
    pub fn delta(&self, base: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (o, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(base.buckets.iter()))
        {
            *o = a.saturating_sub(*b);
        }
        out.count = self.count.saturating_sub(base.count);
        out.sum = self.sum.saturating_sub(base.sum);
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Serializes the histogram into a snapshot section.
    pub fn snap_save(&self, enc: &mut fsencr_snapshot::Enc) {
        for b in &self.buckets {
            enc.put_u64(*b);
        }
        enc.put_u64(self.count);
        enc.put_u64(self.sum);
    }

    /// Restores a histogram from a snapshot section.
    pub fn snap_load(
        dec: &mut fsencr_snapshot::Dec<'_>,
    ) -> Result<Histogram, fsencr_snapshot::SnapError> {
        let mut h = Histogram::new();
        for b in h.buckets.iter_mut() {
            *b = dec.get_u64()?;
        }
        h.count = dec.get_u64()?;
        h.sum = dec.get_u64()?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        for _ in 0..90 {
            h.record(100); // bucket [64,128)
        }
        for _ in 0..10 {
            h.record(5000); // bucket [4096,8192)
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5), 128);
        assert_eq!(h.percentile(0.99), 8192);
        assert!((h.mean() - 590.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_zero_and_huge_values() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.01), 1); // zero lands in bucket 0
        assert_eq!(h.percentile(1.0), 1 << 39);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 20.0);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(format!("{c}"), "10");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn hit_rate_edge_cases() {
        assert_eq!(hit_rate(0, 0), 0.0);
        assert_eq!(hit_rate(5, 0), 1.0);
        assert_eq!(hit_rate(0, 5), 0.0);
        assert!((hit_rate(1, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_empty() {
        let a = Aggregate::new();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
    }

    #[test]
    fn aggregate_tracks_extrema() {
        let mut a = Aggregate::new();
        for v in [5u64, 1, 9, 3] {
            a.record(v);
        }
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 18);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(9));
        assert_eq!(a.mean(), 4.5);
    }
}
