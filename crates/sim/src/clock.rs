//! Simulation time.
//!
//! The simulated core runs at 1 GHz (Table III of the paper), so one core
//! cycle is exactly one nanosecond. All latencies in the workspace are
//! expressed in [`Cycle`]s; helpers convert from the nanosecond figures the
//! paper quotes for the memory device and the AES engine.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, measured in core cycles since boot.
///
/// `Cycle` is also used for durations: the difference of two timestamps is
/// again a `Cycle`. At the paper's 1 GHz clock a cycle equals a nanosecond,
/// which [`Cycle::from_ns`] makes explicit.
///
/// # Examples
///
/// ```
/// use fsencr_sim::Cycle;
///
/// let start = Cycle::new(100);
/// let done = start + Cycle::from_ns(60); // a 60 ns PCM read
/// assert_eq!(done.get(), 160);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero timestamp (simulation boot).
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a timestamp from a raw cycle count.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Converts a nanosecond figure to cycles (1 GHz core: 1 ns = 1 cycle).
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Cycle(ns)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Duration from `earlier` to `self`, saturating at zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use fsencr_sim::Cycle;
    /// assert_eq!(Cycle::new(7).since(Cycle::new(3)).get(), 4);
    /// assert_eq!(Cycle::new(3).since(Cycle::new(7)).get(), 0);
    /// ```
    #[inline]
    pub fn since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

impl From<Cycle> for u64 {
    fn from(value: Cycle) -> Self {
        value.0
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Cycle::ZERO.get(), 0);
        assert_eq!(Cycle::new(42).get(), 42);
        assert_eq!(Cycle::from_ns(60).get(), 60);
        assert_eq!(u64::from(Cycle::new(9)), 9);
        assert_eq!(Cycle::from(9u64), Cycle::new(9));
    }

    #[test]
    fn arithmetic() {
        let a = Cycle::new(10);
        let b = Cycle::new(3);
        assert_eq!((a + b).get(), 13);
        assert_eq!((a + 5u64).get(), 15);
        assert_eq!((a - b).get(), 7);
        // subtraction saturates: durations never go negative
        assert_eq!((b - a).get(), 0);
        let mut c = a;
        c += b;
        c += 1u64;
        assert_eq!(c.get(), 14);
        c -= Cycle::new(4);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn ordering_and_extrema() {
        let a = Cycle::new(2);
        let b = Cycle::new(5);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.since(a).get(), 3);
        assert_eq!(a.since(b).get(), 0);
    }

    #[test]
    fn sum_and_display() {
        let total: Cycle = [1u64, 2, 3].iter().map(|&n| Cycle::new(n)).sum();
        assert_eq!(total.get(), 6);
        assert_eq!(format!("{total}"), "6cyc");
        assert_eq!(format!("{total:?}"), "Cycle(6)");
    }
}
