//! Simulation parameters.
//!
//! Defaults reproduce Table III of the paper: an 8-core 1 GHz out-of-order
//! x86-64 host, three cache levels, a DDR-attached PCM main memory, a 40 ns
//! AES engine, a 512 KiB metadata cache and a 9-level 8-ary Merkle tree.
//! Fractional nanosecond figures (tCL = 12.5 ns) are rounded up to whole
//! cycles, the conservative choice at a 1 GHz clock.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache block size in bytes.
    pub block_bytes: usize,
    /// Access latency in core cycles.
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or any field is zero.
    pub fn sets(&self) -> usize {
        assert!(
            self.size_bytes > 0 && self.ways > 0 && self.block_bytes > 0,
            "cache geometry fields must be positive"
        );
        let lines = self.size_bytes / self.block_bytes;
        assert_eq!(
            lines % self.ways,
            0,
            "cache lines ({lines}) must divide evenly into {} ways",
            self.ways
        );
        lines / self.ways
    }
}

/// Processor-side configuration (Table III, "Processor").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Number of cores (workload threads map 1:1 onto cores).
    pub cores: usize,
    /// Core frequency in MHz; 1000 MHz makes 1 cycle = 1 ns.
    pub freq_mhz: u64,
    /// L1 data cache: private, 2 cycles, 32 KiB, 8-way.
    pub l1: CacheConfig,
    /// L2 cache: private, 20 cycles, 512 KiB, 8-way.
    pub l2: CacheConfig,
    /// L3 cache: shared, 32 cycles, 4 MiB, 64-way.
    pub l3: CacheConfig,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cores: 8,
            freq_mhz: 1000,
            l1: CacheConfig {
                size_bytes: 32 << 10,
                ways: 8,
                block_bytes: 64,
                latency_cycles: 2,
            },
            l2: CacheConfig {
                size_bytes: 512 << 10,
                ways: 8,
                block_bytes: 64,
                latency_cycles: 20,
            },
            l3: CacheConfig {
                size_bytes: 4 << 20,
                ways: 64,
                block_bytes: 64,
                latency_cycles: 32,
            },
        }
    }
}

/// DDR-based PCM main memory (Table III, "DDR-based PCM Main Memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmConfig {
    /// Total capacity in bytes (16 GiB in the paper).
    pub capacity_bytes: u64,
    /// Memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer size in bytes (1 KiB).
    pub row_buffer_bytes: u64,
    /// PCM array read latency in ns (row activation cost), 60 ns.
    pub read_ns: u64,
    /// PCM array write latency in ns, 150 ns.
    pub write_ns: u64,
    /// tRCD: activate-to-column-command delay, 55 ns.
    pub t_rcd_ns: u64,
    /// tCL: column access latency, 12.5 ns rounded up to 13.
    pub t_cl_ns: u64,
    /// tBURST: data burst on the bus, 5 ns.
    pub t_burst_ns: u64,
    /// tWR: write recovery, 150 ns.
    pub t_wr_ns: u64,
    /// Row-buffer misses tolerated before the open-adaptive policy closes
    /// the row eagerly.
    pub adaptive_miss_threshold: u32,
}

impl Default for NvmConfig {
    fn default() -> Self {
        NvmConfig {
            capacity_bytes: 16 << 30,
            channels: 1,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            row_buffer_bytes: 1 << 10,
            read_ns: 60,
            write_ns: 150,
            t_rcd_ns: 55,
            t_cl_ns: 13,
            t_burst_ns: 5,
            t_wr_ns: 150,
            adaptive_miss_threshold: 4,
        }
    }
}

impl NvmConfig {
    /// Total banks across all channels and ranks.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }
}

/// Encryption-engine and security-metadata parameters
/// (Table III, "Encryption Parameters", plus Section III structures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityConfig {
    /// AES pad-generation latency in ns (40 ns).
    pub aes_ns: u64,
    /// Dedicated metadata cache for MECB/FECB/Merkle nodes: 512 KiB, 8-way.
    pub metadata_cache: CacheConfig,
    /// Merkle tree arity (8-ary).
    pub merkle_arity: usize,
    /// Merkle tree levels (9).
    pub merkle_levels: usize,
    /// Osiris stop-loss period: counters are persisted every N updates.
    pub osiris_stop_loss: u32,
    /// OTT ways (8 fully-associative sub-tables searched in parallel).
    pub ott_ways: usize,
    /// OTT entries per way (128).
    pub ott_entries_per_way: usize,
    /// OTT lookup latency in cycles (20, traded against TLB-like power).
    pub ott_latency_cycles: u64,
    /// Hash/MAC latency charged per Merkle level verified, in cycles.
    pub mac_cycles: u64,
    /// Ablation: model *direct* (ECB-style) encryption instead of counter
    /// mode — pad/decryption latency serialises after the data fetch
    /// instead of overlapping it (Section II-C of the paper explains why
    /// CTR mode wins).
    pub direct_encryption: bool,
    /// Section III-D option: statically partition the metadata cache per
    /// metadata kind (half for MECBs, a quarter each for FECBs and
    /// Merkle-tree nodes) instead of sharing it.
    pub partition_metadata_cache: bool,
}

impl Default for SecurityConfig {
    fn default() -> Self {
        SecurityConfig {
            aes_ns: 40,
            metadata_cache: CacheConfig {
                size_bytes: 512 << 10,
                ways: 8,
                block_bytes: 64,
                latency_cycles: 3,
            },
            merkle_arity: 8,
            merkle_levels: 9,
            osiris_stop_loss: 4,
            ott_ways: 8,
            ott_entries_per_way: 128,
            ott_latency_cycles: 20,
            mac_cycles: 40,
            direct_encryption: false,
            partition_metadata_cache: false,
        }
    }
}

impl SecurityConfig {
    /// Total OTT capacity in entries.
    pub fn ott_entries(&self) -> usize {
        self.ott_ways * self.ott_entries_per_way
    }
}

/// Top-level machine configuration aggregating all subsystems.
///
/// # Examples
///
/// ```
/// use fsencr_sim::MachineConfig;
///
/// let cfg = MachineConfig::default();
/// assert_eq!(cfg.cpu.cores, 8);
/// assert_eq!(cfg.nvm.read_ns, 60);
/// assert_eq!(cfg.security.aes_ns, 40);
/// assert_eq!(cfg.page_bytes, 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Processor and cache hierarchy.
    pub cpu: CpuConfig,
    /// PCM main memory.
    pub nvm: NvmConfig,
    /// Encryption engines and metadata structures.
    pub security: SecurityConfig,
    /// Virtual-memory page size (4 KiB; one counter block covers one page).
    pub page_bytes: u64,
}

impl MachineConfig {
    /// The paper's Table III configuration.
    pub fn paper_defaults() -> Self {
        MachineConfig {
            cpu: CpuConfig::default(),
            nvm: NvmConfig::default(),
            security: SecurityConfig::default(),
            page_bytes: 4096,
        }
    }

    /// Returns a copy with a different metadata-cache capacity, used by the
    /// Figure 15 sensitivity sweep.
    pub fn with_metadata_cache_bytes(mut self, bytes: usize) -> Self {
        self.security.metadata_cache.size_bytes = bytes;
        self
    }
}

impl Default for MachineConfig {
    /// Defaults to [`MachineConfig::paper_defaults`] (Table III).
    fn default() -> Self {
        MachineConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_iii() {
        let cfg = MachineConfig::paper_defaults();
        assert_eq!(cfg.cpu.cores, 8);
        assert_eq!(cfg.cpu.l1.size_bytes, 32 << 10);
        assert_eq!(cfg.cpu.l1.latency_cycles, 2);
        assert_eq!(cfg.cpu.l2.size_bytes, 512 << 10);
        assert_eq!(cfg.cpu.l2.latency_cycles, 20);
        assert_eq!(cfg.cpu.l3.size_bytes, 4 << 20);
        assert_eq!(cfg.cpu.l3.ways, 64);
        assert_eq!(cfg.cpu.l3.latency_cycles, 32);
        assert_eq!(cfg.nvm.capacity_bytes, 16 << 30);
        assert_eq!(cfg.nvm.read_ns, 60);
        assert_eq!(cfg.nvm.write_ns, 150);
        assert_eq!(cfg.nvm.ranks_per_channel, 2);
        assert_eq!(cfg.nvm.banks_per_rank, 8);
        assert_eq!(cfg.nvm.row_buffer_bytes, 1024);
        assert_eq!(cfg.security.aes_ns, 40);
        assert_eq!(cfg.security.metadata_cache.size_bytes, 512 << 10);
        assert_eq!(cfg.security.merkle_arity, 8);
        assert_eq!(cfg.security.merkle_levels, 9);
        assert_eq!(cfg.security.ott_entries(), 1024);
        assert_eq!(cfg.page_bytes, 4096);
    }

    #[test]
    fn cache_geometry() {
        let cfg = CpuConfig::default();
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 1024);
        assert_eq!(cfg.l3.sets(), 1024);
    }

    #[test]
    #[should_panic(expected = "must divide evenly")]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 640,
            ways: 3,
            block_bytes: 64,
            latency_cycles: 1,
        }
        .sets();
    }

    #[test]
    fn sweep_helper() {
        let cfg = MachineConfig::paper_defaults().with_metadata_cache_bytes(128 << 10);
        assert_eq!(cfg.security.metadata_cache.size_bytes, 128 << 10);
        // other fields untouched
        assert_eq!(cfg.security.aes_ns, 40);
    }

    #[test]
    fn total_banks() {
        assert_eq!(NvmConfig::default().total_banks(), 16);
    }
}
