//! Single-server resource occupancy model.
//!
//! Memory banks, the shared memory bus and the AES engines serve one request
//! at a time. [`Resource`] tracks when a server becomes free and computes
//! queueing delay for a request arriving at a given time — the standard
//! "busy-until" approximation used by request-level memory simulators.

use crate::clock::Cycle;

/// A single-server resource with FIFO queueing.
///
/// # Examples
///
/// ```
/// use fsencr_sim::{Cycle, Resource};
///
/// let mut bank = Resource::new();
/// // First request at t=0 with 60 cycles of service finishes at 60.
/// let done = bank.serve(Cycle::ZERO, Cycle::new(60));
/// assert_eq!(done, Cycle::new(60));
/// // A request arriving at t=10 must wait until the bank frees up.
/// let done = bank.serve(Cycle::new(10), Cycle::new(60));
/// assert_eq!(done, Cycle::new(120));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Resource {
    busy_until: Cycle,
    served: u64,
    busy_cycles: u64,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Resource::default()
    }

    /// Serves a request arriving at `now` with the given `service` time.
    ///
    /// Returns the completion time: the request starts when both the
    /// requester has arrived and the server is free.
    pub fn serve(&mut self, now: Cycle, service: Cycle) -> Cycle {
        let start = now.max(self.busy_until);
        let done = start + service;
        self.busy_until = done;
        self.served += 1;
        self.busy_cycles += service.get();
        done
    }

    /// The time at which the server next becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Whether the server is free at `now`.
    pub fn is_free_at(&self, now: Cycle) -> bool {
        self.busy_until <= now
    }

    /// Total number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total cycles spent serving requests (utilization numerator).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Serializes the occupancy state into a snapshot section.
    pub fn snap_save(&self, enc: &mut fsencr_snapshot::Enc) {
        enc.put_u64(self.busy_until.get());
        enc.put_u64(self.served);
        enc.put_u64(self.busy_cycles);
    }

    /// Restores occupancy state from a snapshot section.
    pub fn snap_load(
        dec: &mut fsencr_snapshot::Dec<'_>,
    ) -> Result<Resource, fsencr_snapshot::SnapError> {
        Ok(Resource {
            busy_until: Cycle::new(dec.get_u64()?),
            served: dec.get_u64()?,
            busy_cycles: dec.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = Resource::new();
        assert!(r.is_free_at(Cycle::ZERO));
        let done = r.serve(Cycle::new(100), Cycle::new(25));
        assert_eq!(done, Cycle::new(125));
        assert_eq!(r.busy_until(), Cycle::new(125));
    }

    #[test]
    fn queueing_delay_accumulates() {
        let mut r = Resource::new();
        let d1 = r.serve(Cycle::ZERO, Cycle::new(10));
        let d2 = r.serve(Cycle::ZERO, Cycle::new(10));
        let d3 = r.serve(Cycle::ZERO, Cycle::new(10));
        assert_eq!((d1, d2, d3), (Cycle::new(10), Cycle::new(20), Cycle::new(30)));
    }

    #[test]
    fn late_arrival_finds_free_server() {
        let mut r = Resource::new();
        r.serve(Cycle::ZERO, Cycle::new(10));
        let done = r.serve(Cycle::new(50), Cycle::new(5));
        assert_eq!(done, Cycle::new(55));
        assert!(!r.is_free_at(Cycle::new(54)));
        assert!(r.is_free_at(Cycle::new(55)));
    }

    #[test]
    fn bookkeeping() {
        let mut r = Resource::new();
        r.serve(Cycle::ZERO, Cycle::new(3));
        r.serve(Cycle::ZERO, Cycle::new(4));
        assert_eq!(r.served(), 2);
        assert_eq!(r.busy_cycles(), 7);
    }
}
