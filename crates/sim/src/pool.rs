//! A scoped-thread pool for fanning out independent experiment cells.
//!
//! Every `(workload, security mode)` cell of a figure builds its own
//! machine instance and shares nothing with its neighbours, so
//! the cells of one figure can run concurrently. [`run_tasks`] drains a
//! task list with `jobs()` worker threads (`std::thread::scope`, no
//! external dependencies) and returns the results **in submission order**,
//! so figure assembly — and therefore the printed output — is identical to
//! a serial run regardless of completion order or worker count.
//!
//! The worker count resolves, in priority order: [`set_jobs`] (the
//! harness's `--jobs N` flag), the `FSENCR_JOBS` environment variable,
//! then [`std::thread::available_parallelism`]. `1` forces fully serial
//! execution on the calling thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// `0` means "not set"; resolution falls through to the environment.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Stored as `Schedule as usize`; `Fifo` (0) is the production default.
static SCHEDULE: AtomicUsize = AtomicUsize::new(0);

/// Deterministic orders in which the worker pool drains its task queue.
///
/// Figure output must not depend on which worker runs which cell, so the
/// concurrency audit (`cargo run -p analysis -- check`) replays the
/// experiment engine under each of these adversarial-but-reproducible
/// schedules and asserts byte-identical figures. `Fifo` is the normal
/// submission order; the others permute pick-up order or perturb
/// completion order without introducing any randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Tasks are picked up in submission order (production behaviour).
    #[default]
    Fifo,
    /// Tasks are picked up in reverse submission order.
    Lifo,
    /// Even-indexed tasks first, then odd-indexed ones.
    EvenOdd,
    /// Submission order, but each task sleeps `(index % 3) * 200 µs`
    /// before storing its result, forcing out-of-order completion.
    Stagger,
}

impl Schedule {
    fn from_index(i: usize) -> Schedule {
        match i {
            1 => Schedule::Lifo,
            2 => Schedule::EvenOdd,
            3 => Schedule::Stagger,
            _ => Schedule::Fifo,
        }
    }
}

/// Fixes the queue-drain order for subsequent [`run_tasks`] calls. Only
/// the concurrency audit and tests should move this off `Fifo`.
pub fn set_schedule(s: Schedule) {
    SCHEDULE.store(s as usize, Ordering::Relaxed);
}

/// The schedule [`run_tasks`] will drain its queue under.
pub fn schedule() -> Schedule {
    Schedule::from_index(SCHEDULE.load(Ordering::Relaxed))
}

/// Fixes the worker count for subsequent [`run_tasks`] calls (`--jobs N`).
/// A value of `0` clears the override.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count [`run_tasks`] will use: [`set_jobs`] override, else
/// `FSENCR_JOBS`, else the host's available parallelism.
pub fn jobs() -> usize {
    let fixed = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if fixed > 0 {
        return fixed;
    }
    if let Some(n) = std::env::var("FSENCR_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs every task and returns the results in submission order.
///
/// Tasks are pulled from a shared queue by `jobs()` scoped worker threads
/// (capped at the task count); with one worker the tasks run inline on the
/// calling thread in order, which is byte-for-byte the old serial
/// behaviour.
///
/// # Panics
///
/// A panicking task propagates its panic to the caller once the scope
/// joins, matching the serial failure mode.
pub fn run_tasks<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let workers = jobs().min(tasks.len()).max(1);
    if workers == 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let sched = schedule();
    let count = tasks.len();
    let mut ordered: Vec<(usize, F)> = tasks.into_iter().enumerate().collect();
    match sched {
        Schedule::Fifo | Schedule::Stagger => {}
        Schedule::Lifo => ordered.reverse(),
        Schedule::EvenOdd => {
            let (even, odd): (Vec<_>, Vec<_>) = ordered.into_iter().partition(|(i, _)| i % 2 == 0);
            ordered = even.into_iter().chain(odd).collect();
        }
    }
    let queue: Mutex<VecDeque<(usize, F)>> = Mutex::new(ordered.into_iter().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop_front();
                let Some((index, task)) = next else { break };
                let value = task();
                if sched == Schedule::Stagger {
                    std::thread::sleep(std::time::Duration::from_micros((index % 3) as u64 * 200));
                }
                *slots[index].lock().expect("slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every queued task stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_jobs` is process-global, so the tests that touch it share one
    /// lock to avoid interfering with each other.
    static JOBS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn results_keep_submission_order() {
        let _guard = JOBS_LOCK.lock().unwrap();
        set_jobs(4);
        let tasks: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    // Stagger completion so late submissions finish first.
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i * 10
                }
            })
            .collect();
        let got = run_tasks(tasks);
        set_jobs(0);
        assert_eq!(got, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_fallback_matches() {
        let _guard = JOBS_LOCK.lock().unwrap();
        set_jobs(1);
        let got = run_tasks((0..8).map(|i| move || i + 1).collect::<Vec<_>>());
        set_jobs(0);
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn explicit_jobs_beats_environment() {
        let _guard = JOBS_LOCK.lock().unwrap();
        set_jobs(7);
        assert_eq!(jobs(), 7);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let got: Vec<u32> = run_tasks(Vec::<fn() -> u32>::new());
        assert!(got.is_empty());
    }

    #[test]
    fn every_schedule_keeps_submission_order() {
        let _guard = JOBS_LOCK.lock().unwrap();
        set_jobs(4);
        let want: Vec<usize> = (0..33).map(|i| i * 7).collect();
        for sched in [Schedule::Fifo, Schedule::Lifo, Schedule::EvenOdd, Schedule::Stagger] {
            set_schedule(sched);
            let got = run_tasks((0..33).map(|i| move || i * 7).collect::<Vec<_>>());
            assert_eq!(got, want, "{sched:?}");
        }
        set_schedule(Schedule::Fifo);
        set_jobs(0);
    }
}
