//! Discrete-event simulation kernel for the FsEncr reproduction.
//!
//! This crate is the foundation every other crate in the workspace builds
//! on. It deliberately contains no domain knowledge about memories, caches
//! or encryption — only the machinery that a request-level architectural
//! simulator needs:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp (1 cycle = 1 ns at
//!   the paper's 1 GHz core clock).
//! * [`EventQueue`] — a deterministic time-ordered event queue used to
//!   interleave multiple workload threads.
//! * [`Resource`] — a single-server occupancy model used for banks, buses
//!   and engines that can serve one request at a time.
//! * [`stats`] — lightweight counters and a uniform reporting interface.
//! * [`config`] — every parameter of Table III of the paper, with the
//!   paper's values as defaults.
//! * [`rng`] — a tiny deterministic PRNG (SplitMix64) so that the low-level
//!   crates do not need an external RNG dependency.
//!
//! # Examples
//!
//! ```
//! use fsencr_sim::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle::new(10), "b");
//! q.push(Cycle::new(5), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (Cycle::new(5), "a"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod config;
pub mod event;
pub mod pool;
pub mod resource;
pub mod rng;
pub mod stats;

pub use clock::Cycle;
pub use config::MachineConfig;
pub use event::EventQueue;
pub use resource::Resource;
pub use rng::SplitMix64;
pub use stats::{Counter, Histogram, StatSource};
