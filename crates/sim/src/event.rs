//! Deterministic time-ordered event queue.
//!
//! The workloads crate interleaves several simulated threads; each thread is
//! an event carrying its identifier and wake-up time. Ties are broken by
//! insertion order so that a given seed always produces the same schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::Cycle;

/// A time-ordered queue of events with deterministic tie-breaking.
///
/// Events scheduled for the same [`Cycle`] pop in insertion order (FIFO),
/// which keeps multi-threaded workload simulations reproducible.
///
/// # Examples
///
/// ```
/// use fsencr_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), "late");
/// q.push(Cycle::new(1), "early");
/// q.push(Cycle::new(1), "early-second");
/// assert_eq!(q.pop(), Some((Cycle::new(1), "early")));
/// assert_eq!(q.pop(), Some((Cycle::new(1), "early-second")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: Cycle, payload: T) {
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Returns the firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(4), "x");
        q.push(Cycle::new(2), "y");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycle::new(4)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), "a");
        q.push(Cycle::new(5), "b");
        assert_eq!(q.pop(), Some((Cycle::new(5), "b")));
        q.push(Cycle::new(7), "c");
        q.push(Cycle::new(6), "d");
        assert_eq!(q.pop(), Some((Cycle::new(6), "d")));
        assert_eq!(q.pop(), Some((Cycle::new(7), "c")));
        assert_eq!(q.pop(), Some((Cycle::new(10), "a")));
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
