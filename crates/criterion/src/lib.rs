//! A minimal, dependency-free, offline drop-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API this workspace's
//! benches use (`Criterion::bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`, `black_box`).
//!
//! The build environment has no crates.io access, so the real harness
//! cannot be vendored. This shim keeps `cargo bench` functional: each
//! bench warms up, then measures enough iterations to fill a fixed
//! measurement window and reports mean ns/iter. There are no statistics,
//! plots or baselines — for cross-run comparisons use
//! `harness bench` (see `crates/bench`), which emits machine-readable
//! JSON.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// Wall-clock spent warming up each benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `routine` as a named benchmark and prints its mean time.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        routine(&mut b);
        match b.iters {
            0 => println!("{name:40} (no measurement: Bencher::iter never called)"),
            iters => {
                let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:40} {per_iter:>12.1} ns/iter ({iters} iters)");
            }
        }
        self
    }
}

/// Times a closure; handed to the function passed to
/// [`Criterion::bench_function`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over a fixed wall-clock window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also sizes the batch so clock reads stay off the
        // measured path for fast routines.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_WINDOW {
            black_box(routine());
            warm_iters += 1;
        }
        let batch = (warm_iters / 50).max(1);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_WINDOW {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Declares a group of benchmark functions, mirroring the real macro's
/// `criterion_group!(name, target, ..)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(2u64).wrapping_mul(3));
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    fn target(c: &mut Criterion) {
        c.bench_function("shim_smoke", |b| b.iter(|| 1u32 + 1));
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs_targets() {
        benches();
    }
}
