//! The assembled NVM device: contents plus timing plus statistics.

use fsencr_sim::{config::NvmConfig, Counter, Cycle, StatSource};

use crate::addr::{LineAddr, PhysAddr, LINE_BYTES};
use crate::storage::Storage;
use crate::timing::{AccessKind, BankTiming};
use crate::wear::WearTracker;

/// Access counters reported by the device.
///
/// "Number of reads/writes" in Figures 9, 10, 13 and 14 of the paper are
/// exactly these counters — every 64-byte burst that reaches the DIMM,
/// whether it carries data, encryption counters, Merkle nodes or spilled
/// OTT entries.
#[derive(Debug, Clone, Copy, Default)]
pub struct NvmStats {
    /// 64-byte read bursts served.
    pub reads: Counter,
    /// 64-byte write bursts served.
    pub writes: Counter,
}

/// A PCM DIMM: sparse contents, bank timing, and access counters.
///
/// # Examples
///
/// ```
/// use fsencr_nvm::{NvmDevice, PhysAddr, LINE_BYTES};
/// use fsencr_sim::{config::NvmConfig, Cycle};
///
/// let mut nvm = NvmDevice::new(NvmConfig::default());
/// let addr = PhysAddr::new(4096);
/// nvm.write_line(Cycle::ZERO, addr, &[1u8; LINE_BYTES]);
/// assert_eq!(nvm.stats().writes.get(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NvmDevice {
    storage: Storage,
    timing: BankTiming,
    stats: NvmStats,
    wear: WearTracker,
    capacity_bytes: u64,
}

impl NvmDevice {
    /// Creates a device with the given configuration.
    pub fn new(cfg: NvmConfig) -> Self {
        NvmDevice {
            storage: Storage::new(),
            timing: BankTiming::new(cfg),
            stats: NvmStats::default(),
            wear: WearTracker::new(),
            capacity_bytes: cfg.capacity_bytes,
        }
    }

    /// Reads one line, returning its contents and the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the configured capacity.
    pub fn read_line(&mut self, now: Cycle, addr: PhysAddr) -> ([u8; LINE_BYTES], Cycle) {
        let line = self.checked_line(addr);
        self.stats.reads.incr();
        let done = self.timing.access(now, line, AccessKind::Read);
        (self.storage.read_line_hot(line), done)
    }

    /// Writes one line, returning the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the configured capacity.
    pub fn write_line(&mut self, now: Cycle, addr: PhysAddr, data: &[u8; LINE_BYTES]) -> Cycle {
        let line = self.checked_line(addr);
        self.stats.writes.incr();
        self.wear.record(line);
        let done = self.timing.access(now, line, AccessKind::Write);
        self.storage.write_line(line, data);
        done
    }

    fn checked_line(&self, addr: PhysAddr) -> LineAddr {
        let stripped = addr.strip_df().get();
        assert!(
            stripped < self.capacity_bytes,
            "address {stripped:#x} beyond device capacity {:#x}",
            self.capacity_bytes
        );
        addr.line()
    }

    /// Zero-time peek at the raw media — what a physical attacker sees.
    /// Does not disturb timing or statistics.
    pub fn peek_line(&self, addr: PhysAddr) -> [u8; LINE_BYTES] {
        self.storage.read_line(addr.line())
    }

    /// Zero-time raw write, used only by test fixtures and the tampering
    /// attacker model. Does not disturb timing or statistics.
    pub fn poke_line(&mut self, addr: PhysAddr, data: &[u8; LINE_BYTES]) {
        self.storage.write_line(addr.line(), data);
    }

    /// Direct access to the underlying byte store (media-level inspection).
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Mutable access to the byte store, for crash-injection fixtures.
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Access counters.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Resets access counters (used between measurement phases).
    pub fn reset_stats(&mut self) {
        self.stats = NvmStats::default();
    }

    /// Row-buffer hits observed by the timing model.
    pub fn row_hits(&self) -> u64 {
        self.timing.row_hits()
    }

    /// Row-buffer misses observed by the timing model.
    pub fn row_misses(&self) -> u64 {
        self.timing.row_misses()
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Write-endurance accounting (per-page write counts).
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }
}

impl StatSource for NvmDevice {
    fn stat_rows(&self) -> Vec<(String, u64)> {
        vec![
            ("nvm.reads".to_string(), self.stats.reads.get()),
            ("nvm.writes".to_string(), self.stats.writes.get()),
            ("nvm.row_hits".to_string(), self.row_hits()),
            ("nvm.row_misses".to_string(), self.row_misses()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> NvmDevice {
        NvmDevice::new(NvmConfig::default())
    }

    #[test]
    fn read_returns_written_data_and_advances_time() {
        let mut nvm = device();
        let addr = PhysAddr::new(64 * 100);
        let data = [0x5au8; LINE_BYTES];
        let t1 = nvm.write_line(Cycle::ZERO, addr, &data);
        assert!(t1 > Cycle::ZERO);
        let (read, t2) = nvm.read_line(t1, addr);
        assert_eq!(read, data);
        assert!(t2 > t1);
    }

    #[test]
    fn stats_count_bursts() {
        let mut nvm = device();
        let addr = PhysAddr::new(0);
        nvm.write_line(Cycle::ZERO, addr, &[0u8; LINE_BYTES]);
        nvm.read_line(Cycle::ZERO, addr);
        nvm.read_line(Cycle::ZERO, addr);
        assert_eq!(nvm.stats().writes.get(), 1);
        assert_eq!(nvm.stats().reads.get(), 2);
        nvm.reset_stats();
        assert_eq!(nvm.stats().reads.get(), 0);
    }

    #[test]
    fn peek_and_poke_bypass_timing() {
        let mut nvm = device();
        let addr = PhysAddr::new(4096);
        nvm.poke_line(addr, &[9u8; LINE_BYTES]);
        assert_eq!(nvm.peek_line(addr), [9u8; LINE_BYTES]);
        assert_eq!(nvm.stats().reads.get(), 0);
        assert_eq!(nvm.stats().writes.get(), 0);
    }

    #[test]
    fn df_bit_stripped_before_media() {
        let mut nvm = device();
        let plain = PhysAddr::new(8192);
        nvm.write_line(Cycle::ZERO, plain.with_df(), &[3u8; LINE_BYTES]);
        assert_eq!(nvm.peek_line(plain), [3u8; LINE_BYTES]);
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn capacity_is_enforced() {
        let mut nvm = device();
        nvm.read_line(Cycle::ZERO, PhysAddr::new(17 << 30));
    }

    #[test]
    fn stat_rows_exposes_counters() {
        let mut nvm = device();
        nvm.read_line(Cycle::ZERO, PhysAddr::new(0));
        let rows = nvm.stat_rows();
        assert!(rows.iter().any(|(k, v)| k == "nvm.reads" && *v == 1));
        assert!(rows.iter().any(|(k, _)| k == "nvm.row_misses"));
    }
}
