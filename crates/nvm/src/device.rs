//! The assembled NVM device: contents plus timing plus statistics.

use fsencr_faults::FaultInjector;
use fsencr_sim::{config::NvmConfig, Counter, Cycle, StatSource};

use crate::addr::{LineAddr, PhysAddr, LINE_BYTES};
use crate::error::NvmError;
use crate::storage::Storage;
use crate::timing::{AccessKind, BankTiming};
use crate::wear::WearTracker;

/// Access counters reported by the device.
///
/// "Number of reads/writes" in Figures 9, 10, 13 and 14 of the paper are
/// exactly these counters — every 64-byte burst that reaches the DIMM,
/// whether it carries data, encryption counters, Merkle nodes or spilled
/// OTT entries.
#[derive(Debug, Clone, Copy, Default)]
pub struct NvmStats {
    /// 64-byte read bursts served.
    pub reads: Counter,
    /// 64-byte write bursts served.
    pub writes: Counter,
}

/// A PCM DIMM: sparse contents, bank timing, and access counters.
///
/// # Examples
///
/// ```
/// use fsencr_nvm::{NvmDevice, PhysAddr, LINE_BYTES};
/// use fsencr_sim::{config::NvmConfig, Cycle};
///
/// let mut nvm = NvmDevice::new(NvmConfig::default());
/// let addr = PhysAddr::new(4096);
/// nvm.write_line(Cycle::ZERO, addr, &[1u8; LINE_BYTES]);
/// assert_eq!(nvm.stats().writes.get(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NvmDevice {
    storage: Storage,
    timing: BankTiming,
    stats: NvmStats,
    wear: WearTracker,
    capacity_bytes: u64,
    /// Armed fault injector, if any. `None` (the default) costs exactly
    /// one branch per timed line access; peeks and pokes bypass it so
    /// recovery's media inspection and test plumbing stay undistorted.
    faults: Option<Box<FaultInjector>>,
}

impl NvmDevice {
    /// Creates a device with the given configuration.
    pub fn new(cfg: NvmConfig) -> Self {
        NvmDevice {
            storage: Storage::new(),
            timing: BankTiming::new(cfg),
            stats: NvmStats::default(),
            wear: WearTracker::new(),
            capacity_bytes: cfg.capacity_bytes,
            faults: None,
        }
    }

    /// Reads one line, returning its contents and the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the configured capacity.
    pub fn read_line(&mut self, now: Cycle, addr: PhysAddr) -> ([u8; LINE_BYTES], Cycle) {
        let line = self.checked_line(addr);
        self.stats.reads.incr();
        let done = self.timing.access(now, line, AccessKind::Read);
        let mut data = self.storage.read_line_hot(line);
        if self.faults.is_some() {
            self.faulted_read(line, &mut data);
        }
        (data, done)
    }

    /// Writes one line, returning the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the configured capacity.
    pub fn write_line(&mut self, now: Cycle, addr: PhysAddr, data: &[u8; LINE_BYTES]) -> Cycle {
        let line = self.checked_line(addr);
        self.stats.writes.incr();
        self.wear.record(line);
        let done = self.timing.access(now, line, AccessKind::Write);
        if self.faults.is_some() {
            self.faulted_write(line, data);
        } else {
            self.storage.write_line(line, data);
        }
        done
    }

    /// Slow path of [`NvmDevice::read_line`] with an injector armed:
    /// applies planned bit-rot and persists the decayed bytes, so the
    /// flip sticks exactly like retention loss on real media.
    fn faulted_read(&mut self, line: LineAddr, data: &mut [u8; LINE_BYTES]) {
        if let Some(inj) = self.faults.as_deref_mut() {
            if inj.on_read(line.get(), data) {
                self.storage.write_line(line, data);
            }
        }
    }

    /// Slow path of [`NvmDevice::write_line`] with an injector armed:
    /// consults the injector for suppression (power lost, torn-region
    /// tail) and registers newly worn stuck-at cells with the storage
    /// overlay before storing. Timing, stats, and wear have already
    /// accrued — the bus transaction happened either way.
    fn faulted_write(&mut self, line: LineAddr, data: &[u8; LINE_BYTES]) {
        let mut buf = *data;
        let Some(inj) = self.faults.as_deref_mut() else {
            return;
        };
        let outcome = inj.on_write(line.get(), &mut buf);
        if let Some(mask) = outcome.stuck {
            self.storage.stuck_cells_mut().add(line.get(), mask);
        }
        if !outcome.suppress {
            self.storage.write_line(line, &buf);
        }
    }

    /// Validates an address against the device capacity without touching
    /// timing or statistics — the value-typed twin of the panicking
    /// check inside [`NvmDevice::read_line`] / [`NvmDevice::write_line`].
    pub fn check_addr(&self, addr: PhysAddr) -> Result<LineAddr, NvmError> {
        let stripped = addr.strip_df().get();
        if stripped < self.capacity_bytes {
            Ok(addr.line())
        } else {
            Err(NvmError::OutOfRange {
                addr: stripped,
                capacity: self.capacity_bytes,
            })
        }
    }

    /// Arms (or, with `None`, disarms) a fault injector. Disarming also
    /// heals the storage wear-out overlay, restoring a pristine device.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        if injector.is_none() {
            self.storage.set_stuck_cells(None);
        }
        self.faults = injector.map(Box::new);
    }

    /// The armed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_deref()
    }

    /// Mutable access to the armed fault injector, if any (region and
    /// barrier hooks in the layers above report through this).
    pub fn fault_injector_mut(&mut self) -> Option<&mut FaultInjector> {
        self.faults.as_deref_mut()
    }

    fn checked_line(&self, addr: PhysAddr) -> LineAddr {
        let stripped = addr.strip_df().get();
        assert!(
            stripped < self.capacity_bytes,
            "address {stripped:#x} beyond device capacity {:#x}",
            self.capacity_bytes
        );
        addr.line()
    }

    /// Zero-time peek at the raw media — what a physical attacker sees.
    /// Does not disturb timing or statistics.
    pub fn peek_line(&self, addr: PhysAddr) -> [u8; LINE_BYTES] {
        self.storage.read_line(addr.line())
    }

    /// Zero-time raw write, used only by test fixtures and the tampering
    /// attacker model. Does not disturb timing or statistics.
    pub fn poke_line(&mut self, addr: PhysAddr, data: &[u8; LINE_BYTES]) {
        self.storage.write_line(addr.line(), data);
    }

    /// Direct access to the underlying byte store (media-level inspection).
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Mutable access to the byte store, for crash-injection fixtures.
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Access counters.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Resets access counters (used between measurement phases).
    pub fn reset_stats(&mut self) {
        self.stats = NvmStats::default();
    }

    /// Row-buffer hits observed by the timing model.
    pub fn row_hits(&self) -> u64 {
        self.timing.row_hits()
    }

    /// Row-buffer misses observed by the timing model.
    pub fn row_misses(&self) -> u64 {
        self.timing.row_misses()
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Write-endurance accounting (per-page write counts).
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Serializes media contents, bank timing, access counters and wear.
    /// Fails while a fault injector is armed: campaign scaffolding is
    /// host state and must be disarmed before checkpointing.
    pub fn snap_save(
        &self,
        enc: &mut fsencr_snapshot::Enc,
    ) -> Result<(), fsencr_snapshot::SnapError> {
        if self.faults.is_some() {
            return Err(fsencr_snapshot::SnapError::InjectorArmed);
        }
        self.storage.snap_save(enc)?;
        self.timing.snap_save(enc);
        enc.put_u64(self.stats.reads.get());
        enc.put_u64(self.stats.writes.get());
        self.wear.snap_save(enc);
        enc.put_u64(self.capacity_bytes);
        Ok(())
    }

    /// Restores a device for `cfg` from [`NvmDevice::snap_save`] bytes.
    /// No injector is armed on the restored device.
    pub fn snap_load(
        cfg: NvmConfig,
        dec: &mut fsencr_snapshot::Dec<'_>,
    ) -> Result<NvmDevice, fsencr_snapshot::SnapError> {
        let storage = Storage::snap_load(dec)?;
        let timing = BankTiming::snap_load(cfg, dec)?;
        let mut stats = NvmStats::default();
        stats.reads.add(dec.get_u64()?);
        stats.writes.add(dec.get_u64()?);
        let wear = WearTracker::snap_load(dec)?;
        let capacity_bytes = dec.get_u64()?;
        if capacity_bytes != cfg.capacity_bytes {
            return Err(fsencr_snapshot::SnapError::StateMismatch);
        }
        Ok(NvmDevice {
            storage,
            timing,
            stats,
            wear,
            capacity_bytes,
            faults: None,
        })
    }
}

impl StatSource for NvmDevice {
    fn stat_rows(&self) -> Vec<(String, u64)> {
        vec![
            ("nvm.reads".to_string(), self.stats.reads.get()),
            ("nvm.writes".to_string(), self.stats.writes.get()),
            ("nvm.row_hits".to_string(), self.row_hits()),
            ("nvm.row_misses".to_string(), self.row_misses()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> NvmDevice {
        NvmDevice::new(NvmConfig::default())
    }

    #[test]
    fn read_returns_written_data_and_advances_time() {
        let mut nvm = device();
        let addr = PhysAddr::new(64 * 100);
        let data = [0x5au8; LINE_BYTES];
        let t1 = nvm.write_line(Cycle::ZERO, addr, &data);
        assert!(t1 > Cycle::ZERO);
        let (read, t2) = nvm.read_line(t1, addr);
        assert_eq!(read, data);
        assert!(t2 > t1);
    }

    #[test]
    fn stats_count_bursts() {
        let mut nvm = device();
        let addr = PhysAddr::new(0);
        nvm.write_line(Cycle::ZERO, addr, &[0u8; LINE_BYTES]);
        nvm.read_line(Cycle::ZERO, addr);
        nvm.read_line(Cycle::ZERO, addr);
        assert_eq!(nvm.stats().writes.get(), 1);
        assert_eq!(nvm.stats().reads.get(), 2);
        nvm.reset_stats();
        assert_eq!(nvm.stats().reads.get(), 0);
    }

    #[test]
    fn peek_and_poke_bypass_timing() {
        let mut nvm = device();
        let addr = PhysAddr::new(4096);
        nvm.poke_line(addr, &[9u8; LINE_BYTES]);
        assert_eq!(nvm.peek_line(addr), [9u8; LINE_BYTES]);
        assert_eq!(nvm.stats().reads.get(), 0);
        assert_eq!(nvm.stats().writes.get(), 0);
    }

    #[test]
    fn df_bit_stripped_before_media() {
        let mut nvm = device();
        let plain = PhysAddr::new(8192);
        nvm.write_line(Cycle::ZERO, plain.with_df(), &[3u8; LINE_BYTES]);
        assert_eq!(nvm.peek_line(plain), [3u8; LINE_BYTES]);
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn capacity_is_enforced() {
        let mut nvm = device();
        nvm.read_line(Cycle::ZERO, PhysAddr::new(17 << 30));
    }

    #[test]
    fn check_addr_is_the_typed_capacity_check() {
        let nvm = device();
        assert!(nvm.check_addr(PhysAddr::new(4096)).is_ok());
        assert!(matches!(
            nvm.check_addr(PhysAddr::new(17 << 30)),
            Err(crate::NvmError::OutOfRange { .. })
        ));
    }

    #[test]
    fn armed_injector_applies_rot_and_suppression_but_not_peeks() {
        use fsencr_faults::{FaultInjector, FaultPlan};
        use fsencr_faults::plan::RotEvent;

        let mut nvm = device();
        let addr = PhysAddr::new(4096);
        nvm.write_line(Cycle::ZERO, addr, &[0u8; LINE_BYTES]);

        let mut plan = FaultPlan::empty();
        plan.rot.push(RotEvent { read_index: 0, byte: 0, bit: 0 });
        plan.cuts.push(0);
        nvm.set_fault_injector(Some(FaultInjector::new(plan)));

        // Peek bypasses the injector; the timed read decays the line...
        assert_eq!(nvm.peek_line(addr), [0u8; LINE_BYTES]);
        let (rotted, _) = nvm.read_line(Cycle::ZERO, addr);
        assert_eq!(rotted[0], 1);
        // ...and the decay is persistent on the media.
        assert_eq!(nvm.peek_line(addr)[0], 1);

        // Power cut at barrier 0: subsequent timed writes are dropped,
        // but stats and wear still accrue.
        let writes_before = nvm.stats().writes.get();
        if let Some(inj) = nvm.fault_injector_mut() {
            assert!(inj.on_barrier());
        }
        nvm.write_line(Cycle::ZERO, addr, &[0xffu8; LINE_BYTES]);
        assert_eq!(nvm.peek_line(addr)[1], 0);
        assert_eq!(nvm.stats().writes.get(), writes_before + 1);

        // Disarming restores the plain datapath.
        let events = nvm
            .fault_injector_mut()
            .map(|i| i.take_events())
            .unwrap_or_default();
        assert_eq!(events.len(), 2);
        nvm.set_fault_injector(None);
        nvm.write_line(Cycle::ZERO, addr, &[0xffu8; LINE_BYTES]);
        assert_eq!(nvm.peek_line(addr), [0xffu8; LINE_BYTES]);
    }

    #[test]
    fn stuck_cells_overlay_forces_bits_even_for_pokes() {
        use fsencr_faults::StuckMask;

        let mut nvm = device();
        let addr = PhysAddr::new(8192);
        nvm.storage_mut().stuck_cells_mut().add(
            addr.line().get(),
            StuckMask { byte: 3, bit: 0, value: true },
        );
        nvm.poke_line(addr, &[0u8; LINE_BYTES]);
        assert_eq!(nvm.peek_line(addr)[3], 1);
        nvm.write_line(Cycle::ZERO, addr, &[0u8; LINE_BYTES]);
        assert_eq!(nvm.peek_line(addr)[3], 1);
        nvm.storage_mut().set_stuck_cells(None);
        nvm.poke_line(addr, &[0u8; LINE_BYTES]);
        assert_eq!(nvm.peek_line(addr)[3], 0);
    }

    #[test]
    fn stat_rows_exposes_counters() {
        let mut nvm = device();
        nvm.read_line(Cycle::ZERO, PhysAddr::new(0));
        let rows = nvm.stat_rows();
        assert!(rows.iter().any(|(k, v)| k == "nvm.reads" && *v == 1));
        assert!(rows.iter().any(|(k, _)| k == "nvm.row_misses"));
    }
}
