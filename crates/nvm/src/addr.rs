//! Physical addressing and the DF-bit.
//!
//! The paper's central software/hardware contract is one spare physical
//! address bit — the **DF-bit** (DAX-File bit) at bit 51 — set by the kernel
//! in the page-table entry when it maps a DAX file page (Section III-C,
//! `(1UL<<51)|pfn`). The memory controller inspects the bit to route the
//! request through the file encryption engine and strips it before the
//! request reaches the DIMM.

use std::fmt;

/// Cache-line size in bytes (64 B everywhere in Table III).
pub const LINE_BYTES: usize = 64;

/// Page size in bytes (4 KiB; one counter block covers one page).
pub const PAGE_BYTES: usize = 4096;

/// Bit position of the DF (DAX-File) bit inside a physical address.
///
/// Intel IA-32e translates to at most 52 physical bits; bit 51 is unused by
/// any realistic DIMM population, exactly the paper's choice.
pub const DF_BIT: u64 = 1 << 51;

/// A physical byte address, possibly carrying the DF-bit.
///
/// # Examples
///
/// ```
/// use fsencr_nvm::PhysAddr;
///
/// let plain = PhysAddr::new(0x1234);
/// assert!(!plain.df());
/// let tagged = plain.with_df();
/// assert!(tagged.df());
/// assert_eq!(tagged.strip_df(), plain);
/// assert_eq!(tagged.line().get() & fsencr_nvm::DF_BIT, 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw value.
    pub const fn new(addr: u64) -> Self {
        PhysAddr(addr)
    }

    /// Raw address value, including the DF-bit if set.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Whether the DF (DAX-File) bit is set.
    pub const fn df(self) -> bool {
        self.0 & DF_BIT != 0
    }

    /// Returns the address with the DF-bit set — what the kernel writes
    /// into the PTE for a DAX file page.
    pub const fn with_df(self) -> Self {
        PhysAddr(self.0 | DF_BIT)
    }

    /// Returns the address with the DF-bit cleared — what actually goes to
    /// the memory device.
    pub const fn strip_df(self) -> Self {
        PhysAddr(self.0 & !DF_BIT)
    }

    /// The 64-byte-aligned line this byte belongs to (DF-bit stripped).
    pub const fn line(self) -> LineAddr {
        LineAddr((self.0 & !DF_BIT) & !(LINE_BYTES as u64 - 1))
    }

    /// The 4 KiB page this byte belongs to (DF-bit stripped).
    pub const fn page(self) -> PageId {
        PageId((self.0 & !DF_BIT) / PAGE_BYTES as u64)
    }

    /// Byte offset within the 4 KiB page.
    pub const fn page_offset(self) -> u64 {
        (self.0 & !DF_BIT) % PAGE_BYTES as u64
    }

    /// Adds a byte offset, preserving the DF-bit.
    pub const fn offset(self, delta: u64) -> Self {
        PhysAddr(self.0 + delta)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.df() {
            write!(f, "PhysAddr({:#x}|DF)", self.strip_df().0)
        } else {
            write!(f, "PhysAddr({:#x})", self.0)
        }
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(addr: u64) -> Self {
        PhysAddr(addr)
    }
}

/// A 64-byte-aligned line address with the DF-bit stripped — the unit the
/// memory controller, caches and NVM banks operate on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address; the value is forcibly aligned and stripped.
    pub const fn new(addr: u64) -> Self {
        LineAddr((addr & !DF_BIT) & !(LINE_BYTES as u64 - 1))
    }

    /// Raw aligned byte address.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Page containing this line.
    pub const fn page(self) -> PageId {
        PageId(self.0 / PAGE_BYTES as u64)
    }

    /// 64-byte block index within the page, `0..64`.
    pub const fn block_in_page(self) -> u8 {
        ((self.0 % PAGE_BYTES as u64) / LINE_BYTES as u64) as u8
    }

    /// The n-th line after this one.
    pub const fn step(self, lines: u64) -> Self {
        LineAddr(self.0 + lines * LINE_BYTES as u64)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl From<PhysAddr> for LineAddr {
    fn from(addr: PhysAddr) -> Self {
        addr.line()
    }
}

/// A physical 4 KiB page frame number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page ID from a frame number.
    pub const fn new(frame: u64) -> Self {
        PageId(frame)
    }

    /// Frame number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Base byte address of the page.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_BYTES as u64)
    }

    /// Iterator over the 64 line addresses inside this page.
    pub fn lines(self) -> impl Iterator<Item = LineAddr> {
        let base = self.0 * PAGE_BYTES as u64;
        (0..(PAGE_BYTES / LINE_BYTES) as u64).map(move |i| LineAddr::new(base + i * LINE_BYTES as u64))
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageId({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn df_bit_roundtrip() {
        let a = PhysAddr::new(0xdead_beef);
        assert!(!a.df());
        let tagged = a.with_df();
        assert!(tagged.df());
        assert_eq!(tagged.strip_df(), a);
        // idempotent
        assert_eq!(tagged.with_df(), tagged);
        assert_eq!(a.strip_df(), a);
    }

    #[test]
    fn df_bit_is_bit_51() {
        assert_eq!(DF_BIT, 1u64 << 51);
        let a = PhysAddr::new(DF_BIT | 0x40);
        assert!(a.df());
        assert_eq!(a.strip_df().get(), 0x40);
    }

    #[test]
    fn line_and_page_decomposition() {
        let a = PhysAddr::new(2 * PAGE_BYTES as u64 + 3 * LINE_BYTES as u64 + 7);
        assert_eq!(a.page().get(), 2);
        assert_eq!(a.page_offset(), 3 * 64 + 7);
        assert_eq!(a.line().get(), 2 * 4096 + 3 * 64);
        assert_eq!(a.line().block_in_page(), 3);
        assert_eq!(a.line().page().get(), 2);
    }

    #[test]
    fn df_bit_never_leaks_into_line_or_page() {
        let a = PhysAddr::new(0x5000 + 17).with_df();
        assert_eq!(a.line().get() & DF_BIT, 0);
        assert_eq!(a.page().get(), 5);
        assert_eq!(a.page_offset(), 17);
    }

    #[test]
    fn line_step_and_page_lines() {
        let l = LineAddr::new(4096);
        assert_eq!(l.step(2).get(), 4096 + 128);
        let page = PageId::new(1);
        let lines: Vec<LineAddr> = page.lines().collect();
        assert_eq!(lines.len(), 64);
        assert_eq!(lines[0].get(), 4096);
        assert_eq!(lines[63].get(), 4096 + 63 * 64);
        assert!(lines.iter().all(|l| l.page() == page));
    }

    #[test]
    fn page_base_roundtrip() {
        let p = PageId::new(42);
        assert_eq!(p.base().get(), 42 * 4096);
        assert_eq!(p.base().page(), p);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", PhysAddr::new(0x40)), "PhysAddr(0x40)");
        assert_eq!(
            format!("{:?}", PhysAddr::new(0x40).with_df()),
            "PhysAddr(0x40|DF)"
        );
        assert_eq!(format!("{:?}", LineAddr::new(0x40)), "LineAddr(0x40)");
    }

    #[test]
    fn offset_preserves_df() {
        let a = PhysAddr::new(0x1000).with_df().offset(4);
        assert!(a.df());
        assert_eq!(a.strip_df().get(), 0x1004);
    }
}
