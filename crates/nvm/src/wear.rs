//! Write-endurance accounting.
//!
//! PCM cells endure a bounded number of writes (~10^8); the paper leans on
//! this twice — Silent-Shredder-style deletion avoids DoD-style multi-pass
//! overwrites, and footnote 4 argues file counters never overflow within a
//! file's lifetime. This module gives the device per-page write counts so
//! those arguments can be *checked*: tests assert that shredding writes
//! nothing to the data pages, and that hot-line traffic stays far from the
//! endurance bound.

use std::collections::HashMap;

use crate::addr::{LineAddr, PageId};

/// Conservative per-cell write endurance for PCM (Lee et al., ISCA'09).
pub const PCM_ENDURANCE_WRITES: u64 = 100_000_000;

/// Per-page write counters with hot-spot queries.
///
/// # Examples
///
/// ```
/// use fsencr_nvm::{LineAddr, wear::WearTracker};
///
/// let mut w = WearTracker::new();
/// w.record(LineAddr::new(0));
/// w.record(LineAddr::new(64));
/// assert_eq!(w.page_writes(fsencr_nvm::PageId::new(0)), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WearTracker {
    per_page: HashMap<u64, u64>,
    total: u64,
}

impl WearTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        WearTracker::default()
    }

    /// Records one 64-byte line write.
    pub fn record(&mut self, line: LineAddr) {
        *self.per_page.entry(line.page().get()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total line writes recorded.
    pub fn total_writes(&self) -> u64 {
        self.total
    }

    /// Line writes that landed in `page`.
    pub fn page_writes(&self, page: PageId) -> u64 {
        self.per_page.get(&page.get()).copied().unwrap_or(0)
    }

    /// The most-written page and its count, if any writes occurred.
    pub fn hottest_page(&self) -> Option<(PageId, u64)> {
        self.per_page
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(p, c)| (PageId::new(*p), *c))
    }

    /// Number of distinct pages ever written.
    pub fn pages_touched(&self) -> usize {
        self.per_page.len()
    }

    /// Fraction of the endurance budget consumed by the hottest page,
    /// assuming (pessimistically) that every page write hits one line.
    pub fn worst_wear_fraction(&self) -> f64 {
        self.hottest_page()
            .map(|(_, c)| c as f64 / PCM_ENDURANCE_WRITES as f64)
            .unwrap_or(0.0)
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.per_page.clear();
        self.total = 0;
    }

    /// Serializes the per-page counters in sorted page order.
    pub fn snap_save(&self, enc: &mut fsencr_snapshot::Enc) {
        let mut entries: Vec<(u64, u64)> = self.per_page.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable();
        enc.put_u64(entries.len() as u64);
        for (page, count) in entries {
            enc.put_u64(page);
            enc.put_u64(count);
        }
        enc.put_u64(self.total);
    }

    /// Restores a tracker from [`WearTracker::snap_save`] bytes.
    pub fn snap_load(
        dec: &mut fsencr_snapshot::Dec<'_>,
    ) -> Result<WearTracker, fsencr_snapshot::SnapError> {
        let n = dec.get_len()?;
        let mut per_page = HashMap::with_capacity(n);
        for _ in 0..n {
            let page = dec.get_u64()?;
            let count = dec.get_u64()?;
            per_page.insert(page, count);
        }
        let total = dec.get_u64()?;
        Ok(WearTracker { per_page, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut w = WearTracker::new();
        for i in 0..10 {
            w.record(LineAddr::new(i * 64)); // page 0
        }
        w.record(LineAddr::new(4096)); // page 1
        assert_eq!(w.total_writes(), 11);
        assert_eq!(w.page_writes(PageId::new(0)), 10);
        assert_eq!(w.page_writes(PageId::new(1)), 1);
        assert_eq!(w.page_writes(PageId::new(2)), 0);
        assert_eq!(w.pages_touched(), 2);
        assert_eq!(w.hottest_page(), Some((PageId::new(0), 10)));
    }

    #[test]
    fn wear_fraction() {
        let mut w = WearTracker::new();
        assert_eq!(w.worst_wear_fraction(), 0.0);
        for _ in 0..1000 {
            w.record(LineAddr::new(0));
        }
        let frac = w.worst_wear_fraction();
        assert!(frac > 0.0 && frac < 1e-4, "{frac}");
    }

    #[test]
    fn reset() {
        let mut w = WearTracker::new();
        w.record(LineAddr::new(0));
        w.reset();
        assert_eq!(w.total_writes(), 0);
        assert_eq!(w.hottest_page(), None);
    }
}
