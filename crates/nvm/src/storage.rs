//! Sparse byte-accurate NVM contents.
//!
//! The storage array holds what is *physically* on the DIMM: ciphertext for
//! encrypted lines, metadata blocks, Merkle nodes. Pages are allocated
//! lazily on first touch so a 16 GiB device costs only what the workload
//! actually uses. Untouched bytes read as zero, matching a freshly
//! manufactured device.
//!
//! Line traffic is heavily page-local (64 consecutive lines share a 4 KiB
//! frame), so the store keeps the most recently accessed frame *out* of
//! the page map in a one-entry memo: a run of line accesses to one page
//! pays a single `HashMap` probe instead of one per 64-byte line. Batched
//! callers can go further and borrow a whole frame once via
//! [`Storage::page_ref`]/[`Storage::page_mut`].

use std::collections::HashMap;

use fsencr_faults::StuckCells;

use crate::addr::{LineAddr, PageId, PhysAddr, LINE_BYTES, PAGE_BYTES};

/// Sparse page-granular byte store.
///
/// # Examples
///
/// ```
/// use fsencr_nvm::{PhysAddr, Storage};
///
/// let mut s = Storage::new();
/// s.write(PhysAddr::new(10), b"hello");
/// let mut buf = [0u8; 5];
/// s.read(PhysAddr::new(10), &mut buf);
/// assert_eq!(&buf, b"hello");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Storage {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
    /// Most recently accessed resident frame, held out of `pages`. A
    /// frame lives in exactly one of the two places, so every accessor
    /// checks the memo before (or instead of) probing the map.
    last: Option<(u64, Box<[u8; PAGE_BYTES]>)>,
    /// Wear-out overlay installed by the fault injector: stuck bits are
    /// forced on every *line write* through the array — including raw
    /// debug pokes — exactly like physically worn cells. `None` (the
    /// default) costs a single branch per line write.
    stuck: Option<Box<StuckCells>>,
}

impl Storage {
    /// Creates an empty (all-zero) store.
    pub fn new() -> Self {
        Storage::default()
    }

    /// Number of pages that have been touched.
    pub fn resident_pages(&self) -> usize {
        self.pages.len() + usize::from(self.last.is_some())
    }

    /// Moves `frame` into the memo slot, allocating it on first touch,
    /// and returns its bytes. At most one map insert + one removal per
    /// frame *run*; repeat accesses to the memoized frame are probe-free.
    fn frame_mut(&mut self, frame: u64) -> &mut [u8; PAGE_BYTES] {
        let hit = matches!(&self.last, Some((f, _)) if *f == frame);
        if !hit {
            if let Some((f, page)) = self.last.take() {
                self.pages.insert(f, page);
            }
            let page = self
                .pages
                .remove(&frame)
                .unwrap_or_else(|| Box::new([0u8; PAGE_BYTES]));
            self.last = Some((frame, page));
        }
        // The memo is guaranteed occupied here; the fallback insert is
        // unreachable and exists only to avoid a panicking unwrap.
        let (_, page) = self
            .last
            .get_or_insert_with(|| (frame, Box::new([0u8; PAGE_BYTES])));
        page
    }

    /// Promotes `frame` into the memo slot if it is resident, without
    /// allocating. Read paths use this so untouched pages stay untouched.
    fn promote(&mut self, frame: u64) {
        if matches!(&self.last, Some((f, _)) if *f == frame) {
            return;
        }
        if let Some(page) = self.pages.remove(&frame) {
            if let Some((f, old)) = self.last.take() {
                self.pages.insert(f, old);
            }
            self.last = Some((frame, page));
        }
    }

    /// Borrows a whole resident page (`None` if untouched). Batched
    /// readers call this once per 4 KiB frame and slice lines out of the
    /// borrow instead of paying a map probe per line.
    pub fn page_ref(&self, page: PageId) -> Option<&[u8; PAGE_BYTES]> {
        match &self.last {
            Some((f, p)) if *f == page.get() => Some(p),
            _ => self.pages.get(&page.get()).map(|b| &**b),
        }
    }

    /// Mutably borrows a whole page, allocating it on first touch.
    /// Batched writers call this once per 4 KiB frame; the page also
    /// becomes the memoized frame for subsequent line accesses.
    pub fn page_mut(&mut self, page: PageId) -> &mut [u8; PAGE_BYTES] {
        self.frame_mut(page.get())
    }

    /// Reads `buf.len()` bytes starting at `addr` (DF-bit ignored).
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        let mut pos = addr.strip_df().get();
        let mut remaining = buf;
        while !remaining.is_empty() {
            let frame = pos / PAGE_BYTES as u64;
            let offset = (pos % PAGE_BYTES as u64) as usize;
            let take = remaining.len().min(PAGE_BYTES - offset);
            match self.page_ref(PageId::new(frame)) {
                Some(page) => remaining[..take].copy_from_slice(&page[offset..offset + take]),
                None => remaining[..take].fill(0),
            }
            remaining = &mut remaining[take..];
            pos += take as u64;
        }
    }

    /// Writes `data` starting at `addr` (DF-bit ignored).
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        let mut pos = addr.strip_df().get();
        let mut remaining = data;
        while !remaining.is_empty() {
            let frame = pos / PAGE_BYTES as u64;
            let offset = (pos % PAGE_BYTES as u64) as usize;
            let take = remaining.len().min(PAGE_BYTES - offset);
            let page = self.frame_mut(frame);
            page[offset..offset + take].copy_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
            pos += take as u64;
        }
    }

    /// Reads one 64-byte line.
    pub fn read_line(&self, line: LineAddr) -> [u8; LINE_BYTES] {
        let pos = line.get();
        let frame = pos / PAGE_BYTES as u64;
        let offset = (pos % PAGE_BYTES as u64) as usize;
        let mut buf = [0u8; LINE_BYTES];
        if let Some(page) = self.page_ref(PageId::new(frame)) {
            buf.copy_from_slice(&page[offset..offset + LINE_BYTES]);
        }
        buf
    }

    /// Like [`Storage::read_line`] but refreshes the last-page memo, so a
    /// run of line reads within one page probes the map once. Does not
    /// allocate: untouched pages still read as zero and stay untouched.
    pub fn read_line_hot(&mut self, line: LineAddr) -> [u8; LINE_BYTES] {
        let pos = line.get();
        let frame = pos / PAGE_BYTES as u64;
        let offset = (pos % PAGE_BYTES as u64) as usize;
        self.promote(frame);
        let mut buf = [0u8; LINE_BYTES];
        if let Some((f, page)) = &self.last {
            if *f == frame {
                buf.copy_from_slice(&page[offset..offset + LINE_BYTES]);
            }
        }
        buf
    }

    /// Writes one 64-byte line.
    pub fn write_line(&mut self, line: LineAddr, data: &[u8; LINE_BYTES]) {
        let pos = line.get();
        let frame = pos / PAGE_BYTES as u64;
        let offset = (pos % PAGE_BYTES as u64) as usize;
        let page = self.frame_mut(frame);
        page[offset..offset + LINE_BYTES].copy_from_slice(data);
        if self.stuck.is_some() {
            // Briefly lift the overlay out of `self` so the stuck masks
            // can be applied to the memoized frame without aliasing it.
            let stuck = self.stuck.take();
            if let Some(cells) = &stuck {
                let page = self.frame_mut(frame);
                cells.apply(pos, &mut page[offset..offset + LINE_BYTES]);
            }
            self.stuck = stuck;
        }
    }

    /// Installs (or clears) the wear-out overlay. Passing `None` heals
    /// every stuck cell — used when the fault injector is disarmed.
    pub fn set_stuck_cells(&mut self, cells: Option<StuckCells>) {
        self.stuck = cells.map(Box::new);
    }

    /// The wear-out overlay, if one is installed.
    pub fn stuck_cells(&self) -> Option<&StuckCells> {
        self.stuck.as_deref()
    }

    /// Mutable wear-out overlay, installing an empty one on first use
    /// (the fault injector registers newly worn cells through this).
    pub fn stuck_cells_mut(&mut self) -> &mut StuckCells {
        self.stuck.get_or_insert_with(Default::default)
    }

    /// Fills an entire page with `byte` (used by secure shredding).
    pub fn fill_page(&mut self, page: PageId, byte: u8) {
        *self.frame_mut(page.get()) = [byte; PAGE_BYTES];
    }

    /// Drops a page's backing store, returning it to the all-zero state.
    pub fn discard_page(&mut self, page: PageId) {
        if matches!(&self.last, Some((f, _)) if *f == page.get()) {
            self.last = None;
        } else {
            self.pages.remove(&page.get());
        }
    }

    /// Iterates the frame numbers of every touched page — what a physical
    /// attacker scanning the DIMM would enumerate.
    pub fn frames(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages
            .keys()
            .copied()
            .chain(self.last.iter().map(|(f, _)| *f))
    }

    /// Returns a copy of a whole page (zeroes if untouched).
    pub fn snapshot_page(&self, page: PageId) -> [u8; PAGE_BYTES] {
        match self.page_ref(page) {
            Some(p) => *p,
            None => [0u8; PAGE_BYTES],
        }
    }

    /// Serializes every resident frame in sorted frame order. The memo
    /// slot is folded in transparently — where a frame physically lives
    /// is a host-side cache detail, not media state. Fails while a
    /// wear-out overlay is installed: stuck cells belong to an armed
    /// fault campaign, which must be disarmed before checkpointing.
    pub fn snap_save(
        &self,
        enc: &mut fsencr_snapshot::Enc,
    ) -> Result<(), fsencr_snapshot::SnapError> {
        if self.stuck.is_some() {
            return Err(fsencr_snapshot::SnapError::InjectorArmed);
        }
        let mut frames: Vec<u64> = Vec::with_capacity(self.resident_pages());
        frames.extend(self.frames());
        frames.sort_unstable();
        enc.put_u64(frames.len() as u64);
        for f in frames {
            enc.put_u64(f);
            match self.page_ref(PageId::new(f)) {
                Some(page) => enc.put_bytes(&page[..]),
                None => enc.put_bytes(&[0u8; PAGE_BYTES]),
            }
        }
        Ok(())
    }

    /// Restores a store from [`Storage::snap_save`] bytes. The memo slot
    /// starts empty and no overlay is installed.
    pub fn snap_load(
        dec: &mut fsencr_snapshot::Dec<'_>,
    ) -> Result<Storage, fsencr_snapshot::SnapError> {
        let n = dec.get_len()?;
        let mut pages = HashMap::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let frame = dec.get_u64()?;
            if prev.is_some_and(|p| p >= frame) {
                return Err(fsencr_snapshot::SnapError::Corrupt("frame order"));
            }
            prev = Some(frame);
            let bytes = dec.get_bytes(PAGE_BYTES)?;
            let mut page = Box::new([0u8; PAGE_BYTES]);
            page.copy_from_slice(bytes);
            pages.insert(frame, page);
        }
        Ok(Storage {
            pages,
            last: None,
            stuck: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_by_default() {
        let s = Storage::new();
        let mut buf = [0xffu8; 32];
        s.read(PhysAddr::new(123456), &mut buf);
        assert_eq!(buf, [0u8; 32]);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = Storage::new();
        let data: Vec<u8> = (0..100).collect();
        s.write(PhysAddr::new(500), &data);
        let mut buf = vec![0u8; 100];
        s.read(PhysAddr::new(500), &mut buf);
        assert_eq!(buf, data);
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn cross_page_write() {
        let mut s = Storage::new();
        let data = vec![0xabu8; 10000]; // spans 3+ pages
        s.write(PhysAddr::new(4000), &data);
        let mut buf = vec![0u8; 10000];
        s.read(PhysAddr::new(4000), &mut buf);
        assert_eq!(buf, data);
        assert!(s.resident_pages() >= 3);
        // bytes before the write remain zero
        let mut pre = [0u8; 16];
        s.read(PhysAddr::new(3984), &mut pre);
        assert_eq!(pre, [0u8; 16]);
    }

    #[test]
    fn line_interface() {
        let mut s = Storage::new();
        let line = LineAddr::new(8192 + 128);
        let mut data = [0u8; LINE_BYTES];
        for (i, d) in data.iter_mut().enumerate() {
            *d = i as u8;
        }
        s.write_line(line, &data);
        assert_eq!(s.read_line(line), data);
        // adjacent lines untouched
        assert_eq!(s.read_line(line.step(1)), [0u8; LINE_BYTES]);
    }

    #[test]
    fn df_bit_is_transparent() {
        let mut s = Storage::new();
        s.write(PhysAddr::new(64).with_df(), b"secret");
        let mut buf = [0u8; 6];
        s.read(PhysAddr::new(64), &mut buf);
        assert_eq!(&buf, b"secret");
    }

    #[test]
    fn fill_and_discard_page() {
        let mut s = Storage::new();
        let page = PageId::new(3);
        s.fill_page(page, 0xee);
        assert_eq!(s.read_line(LineAddr::new(3 * 4096)), [0xee; LINE_BYTES]);
        let snap = s.snapshot_page(page);
        assert!(snap.iter().all(|&b| b == 0xee));
        s.discard_page(page);
        assert_eq!(s.read_line(LineAddr::new(3 * 4096)), [0u8; LINE_BYTES]);
        assert_eq!(s.snapshot_page(page), [0u8; PAGE_BYTES]);
    }

    #[test]
    fn overwrite_replaces() {
        let mut s = Storage::new();
        s.write(PhysAddr::new(0), b"aaaa");
        s.write(PhysAddr::new(2), b"bb");
        let mut buf = [0u8; 4];
        s.read(PhysAddr::new(0), &mut buf);
        assert_eq!(&buf, b"aabb");
    }

    #[test]
    fn memo_survives_interleaved_frames() {
        let mut s = Storage::new();
        // Alternate writes across two frames: each switch flushes the
        // memoized page back into the map without losing data.
        for i in 0..8u8 {
            s.write_line(LineAddr::new(u64::from(i % 2) * 4096), &[i; LINE_BYTES]);
        }
        assert_eq!(s.read_line(LineAddr::new(0)), [6u8; LINE_BYTES]);
        assert_eq!(s.read_line(LineAddr::new(4096)), [7u8; LINE_BYTES]);
        assert_eq!(s.resident_pages(), 2);
        let mut frames: Vec<u64> = s.frames().collect();
        frames.sort_unstable();
        assert_eq!(frames, vec![0, 1]);
    }

    #[test]
    fn hot_reads_do_not_allocate() {
        let mut s = Storage::new();
        assert_eq!(s.read_line_hot(LineAddr::new(64 * 4096)), [0u8; LINE_BYTES]);
        assert_eq!(s.resident_pages(), 0);
        s.write_line(LineAddr::new(0), &[1u8; LINE_BYTES]);
        // A hot read of another resident page promotes it into the memo
        // and keeps frame enumeration intact.
        s.write_line(LineAddr::new(4096), &[2u8; LINE_BYTES]);
        assert_eq!(s.read_line_hot(LineAddr::new(0)), [1u8; LINE_BYTES]);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn page_ref_and_mut_borrow_whole_frames() {
        let mut s = Storage::new();
        assert!(s.page_ref(PageId::new(5)).is_none());
        s.page_mut(PageId::new(5))[100] = 0x42;
        let page = s.page_ref(PageId::new(5)).expect("allocated by page_mut");
        assert_eq!(page[100], 0x42);
        assert_eq!(page[101], 0);
        // The borrowed view and the line view agree.
        let mut line = [0u8; LINE_BYTES];
        line.copy_from_slice(&page[64..128]);
        assert_eq!(s.read_line(LineAddr::new(5 * 4096 + 64)), line);
    }

    #[test]
    fn discard_clears_memoized_page() {
        let mut s = Storage::new();
        s.write_line(LineAddr::new(2 * 4096), &[9u8; LINE_BYTES]);
        // Frame 2 sits in the memo slot; discarding must still zero it.
        s.discard_page(PageId::new(2));
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.read_line(LineAddr::new(2 * 4096)), [0u8; LINE_BYTES]);
    }
}
