//! Sparse byte-accurate NVM contents.
//!
//! The storage array holds what is *physically* on the DIMM: ciphertext for
//! encrypted lines, metadata blocks, Merkle nodes. Pages are allocated
//! lazily on first touch so a 16 GiB device costs only what the workload
//! actually uses. Untouched bytes read as zero, matching a freshly
//! manufactured device.

use std::collections::HashMap;

use crate::addr::{LineAddr, PageId, PhysAddr, LINE_BYTES, PAGE_BYTES};

/// Sparse page-granular byte store.
///
/// # Examples
///
/// ```
/// use fsencr_nvm::{PhysAddr, Storage};
///
/// let mut s = Storage::new();
/// s.write(PhysAddr::new(10), b"hello");
/// let mut buf = [0u8; 5];
/// s.read(PhysAddr::new(10), &mut buf);
/// assert_eq!(&buf, b"hello");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Storage {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl Storage {
    /// Creates an empty (all-zero) store.
    pub fn new() -> Self {
        Storage::default()
    }

    /// Number of pages that have been touched.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads `buf.len()` bytes starting at `addr` (DF-bit ignored).
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        let mut pos = addr.strip_df().get();
        let mut remaining = buf;
        while !remaining.is_empty() {
            let frame = pos / PAGE_BYTES as u64;
            let offset = (pos % PAGE_BYTES as u64) as usize;
            let take = remaining.len().min(PAGE_BYTES - offset);
            match self.pages.get(&frame) {
                Some(page) => remaining[..take].copy_from_slice(&page[offset..offset + take]),
                None => remaining[..take].fill(0),
            }
            remaining = &mut remaining[take..];
            pos += take as u64;
        }
    }

    /// Writes `data` starting at `addr` (DF-bit ignored).
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        let mut pos = addr.strip_df().get();
        let mut remaining = data;
        while !remaining.is_empty() {
            let frame = pos / PAGE_BYTES as u64;
            let offset = (pos % PAGE_BYTES as u64) as usize;
            let take = remaining.len().min(PAGE_BYTES - offset);
            let page = self
                .pages
                .entry(frame)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            page[offset..offset + take].copy_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
            pos += take as u64;
        }
    }

    /// Reads one 64-byte line.
    pub fn read_line(&self, line: LineAddr) -> [u8; LINE_BYTES] {
        let mut buf = [0u8; LINE_BYTES];
        self.read(PhysAddr::new(line.get()), &mut buf);
        buf
    }

    /// Writes one 64-byte line.
    pub fn write_line(&mut self, line: LineAddr, data: &[u8; LINE_BYTES]) {
        self.write(PhysAddr::new(line.get()), data);
    }

    /// Fills an entire page with `byte` (used by secure shredding).
    pub fn fill_page(&mut self, page: PageId, byte: u8) {
        self.pages
            .insert(page.get(), Box::new([byte; PAGE_BYTES]));
    }

    /// Drops a page's backing store, returning it to the all-zero state.
    pub fn discard_page(&mut self, page: PageId) {
        self.pages.remove(&page.get());
    }

    /// Iterates the frame numbers of every touched page — what a physical
    /// attacker scanning the DIMM would enumerate.
    pub fn frames(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages.keys().copied()
    }

    /// Returns a copy of a whole page (zeroes if untouched).
    pub fn snapshot_page(&self, page: PageId) -> [u8; PAGE_BYTES] {
        match self.pages.get(&page.get()) {
            Some(p) => **p,
            None => [0u8; PAGE_BYTES],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_by_default() {
        let s = Storage::new();
        let mut buf = [0xffu8; 32];
        s.read(PhysAddr::new(123456), &mut buf);
        assert_eq!(buf, [0u8; 32]);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = Storage::new();
        let data: Vec<u8> = (0..100).collect();
        s.write(PhysAddr::new(500), &data);
        let mut buf = vec![0u8; 100];
        s.read(PhysAddr::new(500), &mut buf);
        assert_eq!(buf, data);
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn cross_page_write() {
        let mut s = Storage::new();
        let data = vec![0xabu8; 10000]; // spans 3+ pages
        s.write(PhysAddr::new(4000), &data);
        let mut buf = vec![0u8; 10000];
        s.read(PhysAddr::new(4000), &mut buf);
        assert_eq!(buf, data);
        assert!(s.resident_pages() >= 3);
        // bytes before the write remain zero
        let mut pre = [0u8; 16];
        s.read(PhysAddr::new(3984), &mut pre);
        assert_eq!(pre, [0u8; 16]);
    }

    #[test]
    fn line_interface() {
        let mut s = Storage::new();
        let line = LineAddr::new(8192 + 128);
        let mut data = [0u8; LINE_BYTES];
        for (i, d) in data.iter_mut().enumerate() {
            *d = i as u8;
        }
        s.write_line(line, &data);
        assert_eq!(s.read_line(line), data);
        // adjacent lines untouched
        assert_eq!(s.read_line(line.step(1)), [0u8; LINE_BYTES]);
    }

    #[test]
    fn df_bit_is_transparent() {
        let mut s = Storage::new();
        s.write(PhysAddr::new(64).with_df(), b"secret");
        let mut buf = [0u8; 6];
        s.read(PhysAddr::new(64), &mut buf);
        assert_eq!(&buf, b"secret");
    }

    #[test]
    fn fill_and_discard_page() {
        let mut s = Storage::new();
        let page = PageId::new(3);
        s.fill_page(page, 0xee);
        assert_eq!(s.read_line(LineAddr::new(3 * 4096)), [0xee; LINE_BYTES]);
        let snap = s.snapshot_page(page);
        assert!(snap.iter().all(|&b| b == 0xee));
        s.discard_page(page);
        assert_eq!(s.read_line(LineAddr::new(3 * 4096)), [0u8; LINE_BYTES]);
        assert_eq!(s.snapshot_page(page), [0u8; PAGE_BYTES]);
    }

    #[test]
    fn overwrite_replaces() {
        let mut s = Storage::new();
        s.write(PhysAddr::new(0), b"aaaa");
        s.write(PhysAddr::new(2), b"bb");
        let mut buf = [0u8; 4];
        s.read(PhysAddr::new(0), &mut buf);
        assert_eq!(&buf, b"aabb");
    }
}
