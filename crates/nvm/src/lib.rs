//! Byte-accurate PCM main-memory model.
//!
//! This crate is the memory substrate of the FsEncr reproduction. It models
//! the DDR-attached PCM DIMM of Table III at two levels that the rest of the
//! workspace needs:
//!
//! * **Contents** — [`Storage`] is a sparse, page-granular byte array: the
//!   simulated NVM really holds the (cipher)text bytes the encryption
//!   engines produce, so tests can inspect "what an attacker who stole the
//!   DIMM would see".
//! * **Timing** — [`BankTiming`] decodes physical addresses with the
//!   RoRaBaChCo mapping, tracks per-bank open rows with the open-adaptive
//!   page policy, and charges tRCD/tCL/tBURST/tWR plus the PCM array
//!   latencies (60 ns read / 150 ns write).
//!
//! [`NvmDevice`] glues the two together behind a simple
//! `read_line`/`write_line` interface consumed by the memory controller in
//! the `fsencr` crate.
//!
//! # Examples
//!
//! ```
//! use fsencr_nvm::{NvmDevice, PhysAddr, LINE_BYTES};
//! use fsencr_sim::{config::NvmConfig, Cycle};
//!
//! let mut nvm = NvmDevice::new(NvmConfig::default());
//! let addr = PhysAddr::new(0x1000);
//! let done = nvm.write_line(Cycle::ZERO, addr, &[7u8; LINE_BYTES]);
//! let (data, _done2) = nvm.read_line(done, addr);
//! assert_eq!(data, [7u8; LINE_BYTES]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod device;
pub mod error;
pub mod storage;
pub mod timing;
pub mod wear;

pub use addr::{LineAddr, PageId, PhysAddr, DF_BIT, LINE_BYTES, PAGE_BYTES};
pub use device::{NvmDevice, NvmStats};
pub use error::NvmError;
pub use storage::Storage;
pub use timing::{AccessKind, BankTiming};
pub use wear::WearTracker;
