//! Bank-level PCM timing with the RoRaBaChCo address mapping.
//!
//! Table III specifies 2 ranks/channel, 8 banks/rank, a 1 KiB row buffer,
//! the open-adaptive page policy and RoRaBaChCo address interleaving. The
//! model charges, per access:
//!
//! * **row-buffer hit** — `tCL + tBURST`;
//! * **row-buffer miss** — close the old row (a dirty PCM row buffer pays
//!   the 150 ns array write) + `tRCD` + the 60 ns PCM array read + `tCL +
//!   tBURST`;
//! * **write recovery** — writes additionally occupy the bank for `tWR`
//!   after the burst, which is how write-intensive workloads back-pressure.
//!
//! The open-adaptive policy keeps rows open while they are hitting and
//! switches a bank to closed-page operation after a streak of misses, which
//! removes the dirty-row close from the critical path of streaming writes.

use fsencr_sim::{config::NvmConfig, Cycle, Resource};

use crate::addr::LineAddr;

/// Whether an access reads or writes the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A 64-byte read burst.
    Read,
    /// A 64-byte write burst.
    Write,
}

/// Decoded RoRaBaChCo coordinates of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankCoord {
    /// Flat bank index across channels and ranks.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
}

#[derive(Debug, Clone)]
struct BankState {
    server: Resource,
    open_row: Option<u64>,
    dirty: bool,
    miss_streak: u32,
    closed_mode: bool,
    last_row: Option<u64>,
}

impl BankState {
    fn new() -> Self {
        BankState {
            server: Resource::new(),
            open_row: None,
            dirty: false,
            miss_streak: 0,
            closed_mode: false,
            last_row: None,
        }
    }
}

/// Per-bank timing model for the PCM device.
#[derive(Debug, Clone)]
pub struct BankTiming {
    cfg: NvmConfig,
    banks: Vec<BankState>,
    row_hits: u64,
    row_misses: u64,
}

impl BankTiming {
    /// Creates the timing model for a device configuration.
    pub fn new(cfg: NvmConfig) -> Self {
        let banks = (0..cfg.total_banks()).map(|_| BankState::new()).collect();
        BankTiming {
            cfg,
            banks,
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// Decodes a line address with RoRaBaChCo interleaving
    /// (row : rank : bank : channel : column, from MSB to LSB).
    pub fn decode(&self, line: LineAddr) -> BankCoord {
        let lines_per_row = (self.cfg.row_buffer_bytes / 64).max(1);
        let mut v = line.get() / 64;
        v /= lines_per_row; // column bits consumed
        let channel = (v % self.cfg.channels as u64) as usize;
        v /= self.cfg.channels as u64;
        let bank_in_rank = (v % self.cfg.banks_per_rank as u64) as usize;
        v /= self.cfg.banks_per_rank as u64;
        let rank = (v % self.cfg.ranks_per_channel as u64) as usize;
        v /= self.cfg.ranks_per_channel as u64;
        let row = v;
        let bank = (channel * self.cfg.ranks_per_channel + rank) * self.cfg.banks_per_rank
            + bank_in_rank;
        BankCoord { bank, row }
    }

    /// Charges one access and returns its completion time.
    pub fn access(&mut self, now: Cycle, line: LineAddr, kind: AccessKind) -> Cycle {
        let coord = self.decode(line);
        let cfg = self.cfg;
        let bank = &mut self.banks[coord.bank];

        // Open-adaptive recovery: in closed mode, an access that *would*
        // have hit the previously used row signals returning locality, so
        // the bank reverts to open-page operation.
        if bank.closed_mode && bank.last_row == Some(coord.row) {
            bank.closed_mode = false;
            bank.miss_streak = 0;
        }

        let hit = bank.open_row == Some(coord.row);
        let mut service_ns = 0u64;

        if hit {
            self.row_hits += 1;
            bank.miss_streak = 0;
        } else {
            self.row_misses += 1;
            if bank.last_row != Some(coord.row) {
                bank.miss_streak += 1;
            }
            if bank.miss_streak >= cfg.adaptive_miss_threshold {
                bank.closed_mode = true;
            }
            // Closing a dirty open row writes the row buffer back to the
            // PCM array; in closed mode the close already happened off the
            // critical path.
            if bank.open_row.is_some() && bank.dirty && !bank.closed_mode {
                service_ns += cfg.write_ns;
            }
            // Activate: array read into the row buffer.
            service_ns += cfg.t_rcd_ns + cfg.read_ns;
            bank.open_row = Some(coord.row);
            bank.dirty = false;
        }

        // Column access + burst.
        service_ns += cfg.t_cl_ns + cfg.t_burst_ns;

        let extra_occupancy = match kind {
            AccessKind::Read => 0,
            AccessKind::Write => {
                bank.dirty = true;
                cfg.t_wr_ns
            }
        };

        // The requester sees the service latency; the bank stays busy for
        // any write-recovery tail beyond that.
        let done = bank.server.serve(now, Cycle::from_ns(service_ns + extra_occupancy));
        if bank.closed_mode {
            // Closed-page mode: precharge immediately after the access. The
            // array commit of a dirty buffer is covered by the tWR tail.
            bank.open_row = None;
            bank.dirty = false;
        }
        bank.last_row = Some(coord.row);
        // The requester observes completion at the end of the burst; the
        // write-recovery tail only occupies the bank.
        done - Cycle::from_ns(extra_occupancy)
    }

    /// Row-buffer hits observed so far.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer misses observed so far.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Serializes every bank's occupancy and row-buffer state.
    pub fn snap_save(&self, enc: &mut fsencr_snapshot::Enc) {
        enc.put_u64(self.banks.len() as u64);
        for bank in &self.banks {
            bank.server.snap_save(enc);
            enc.put_opt_u64(bank.open_row);
            enc.put_bool(bank.dirty);
            enc.put_u32(bank.miss_streak);
            enc.put_bool(bank.closed_mode);
            enc.put_opt_u64(bank.last_row);
        }
        enc.put_u64(self.row_hits);
        enc.put_u64(self.row_misses);
    }

    /// Restores a timing model for `cfg` from [`BankTiming::snap_save`]
    /// bytes. The bank count must match the configuration.
    pub fn snap_load(
        cfg: NvmConfig,
        dec: &mut fsencr_snapshot::Dec<'_>,
    ) -> Result<BankTiming, fsencr_snapshot::SnapError> {
        let n = dec.get_len()?;
        if n != cfg.total_banks() {
            return Err(fsencr_snapshot::SnapError::StateMismatch);
        }
        let mut banks = Vec::with_capacity(n);
        for _ in 0..n {
            let server = Resource::snap_load(dec)?;
            let open_row = dec.get_opt_u64()?;
            let dirty = dec.get_bool()?;
            let miss_streak = dec.get_u32()?;
            let closed_mode = dec.get_bool()?;
            let last_row = dec.get_opt_u64()?;
            banks.push(BankState {
                server,
                open_row,
                dirty,
                miss_streak,
                closed_mode,
                last_row,
            });
        }
        let row_hits = dec.get_u64()?;
        let row_misses = dec.get_u64()?;
        Ok(BankTiming {
            cfg,
            banks,
            row_hits,
            row_misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NvmConfig {
        NvmConfig::default()
    }

    #[test]
    fn decode_spreads_rows_across_banks() {
        let t = BankTiming::new(cfg());
        // Consecutive row-buffer-sized chunks land in different banks.
        let a = t.decode(LineAddr::new(0));
        let b = t.decode(LineAddr::new(1024));
        assert_ne!((a.bank, a.row), (b.bank, b.row));
        assert_ne!(a.bank, b.bank, "RoRaBaChCo interleaves banks above columns");
    }

    #[test]
    fn decode_same_row_within_row_buffer() {
        let t = BankTiming::new(cfg());
        let a = t.decode(LineAddr::new(0));
        let b = t.decode(LineAddr::new(960)); // last line of the same 1 KiB row
        assert_eq!((a.bank, a.row), (b.bank, b.row));
    }

    #[test]
    fn decode_stays_in_range() {
        let t = BankTiming::new(cfg());
        for i in 0..10_000u64 {
            let c = t.decode(LineAddr::new(i * 64 * 7919)); // scatter
            assert!(c.bank < cfg().total_banks());
        }
    }

    #[test]
    fn first_access_is_a_row_miss() {
        let mut t = BankTiming::new(cfg());
        let done = t.access(Cycle::ZERO, LineAddr::new(0), AccessKind::Read);
        // tRCD(55) + read(60) + tCL(13) + tBURST(5)
        assert_eq!(done.get(), 55 + 60 + 13 + 5);
        assert_eq!(t.row_misses(), 1);
        assert_eq!(t.row_hits(), 0);
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut t = BankTiming::new(cfg());
        let d1 = t.access(Cycle::ZERO, LineAddr::new(0), AccessKind::Read);
        let d2 = t.access(d1, LineAddr::new(64), AccessKind::Read);
        assert_eq!((d2 - d1).get(), 13 + 5, "row hit is tCL+tBURST");
        assert_eq!(t.row_hits(), 1);
    }

    #[test]
    fn write_recovery_delays_next_access() {
        let mut t = BankTiming::new(cfg());
        let d1 = t.access(Cycle::ZERO, LineAddr::new(0), AccessKind::Write);
        // Requester sees the burst complete without tWR...
        assert_eq!(d1.get(), 55 + 60 + 13 + 5);
        // ...but the next access to the same bank waits out the recovery.
        let d2 = t.access(d1, LineAddr::new(64), AccessKind::Read);
        assert_eq!((d2 - d1).get(), 150 + 13 + 5);
    }

    #[test]
    fn dirty_row_close_costs_array_write() {
        let mut t = BankTiming::new(cfg());
        // Write to row 0 of bank 0 (dirty), then read a different row of
        // the same bank: the close must pay the 150 ns write-back.
        let lines_per_row = 1024 / 64;
        let banks_rows_stride = 1024 * 1 * 8 * 2; // one full row of every bank
        let same_bank_next_row = LineAddr::new(banks_rows_stride);
        let t0 = t.decode(LineAddr::new(0));
        let t1 = t.decode(same_bank_next_row);
        assert_eq!(t0.bank, t1.bank);
        assert_ne!(t0.row, t1.row);
        let _ = lines_per_row;

        let d1 = t.access(Cycle::ZERO, LineAddr::new(0), AccessKind::Write);
        let d2 = t.access(d1, same_bank_next_row, AccessKind::Read);
        // tWR tail + dirty close (150) + tRCD + read + tCL + tBURST
        assert_eq!((d2 - d1).get(), 150 + 150 + 55 + 60 + 13 + 5);
    }

    #[test]
    fn banks_operate_in_parallel() {
        let mut t = BankTiming::new(cfg());
        let d1 = t.access(Cycle::ZERO, LineAddr::new(0), AccessKind::Read);
        // Different bank: no queueing behind bank 0.
        let d2 = t.access(Cycle::ZERO, LineAddr::new(1024), AccessKind::Read);
        assert_eq!(d1, d2);
    }

    #[test]
    fn adaptive_policy_engages_after_miss_streak() {
        let mut t = BankTiming::new(cfg());
        // Hammer alternating rows of one bank to force misses.
        let stride = 1024 * 8 * 2; // next row, same bank (ch=1)
        let mut now = Cycle::ZERO;
        let mut last_delta = 0;
        for i in 0..12u64 {
            let line = LineAddr::new((i % 2) * stride as u64 * 2 + (i / 2) * 0);
            let done = t.access(now, line, AccessKind::Write);
            last_delta = (done - now).get();
            now = done;
        }
        // After the streak the dirty-close falls off the critical path:
        // the last misses cost activate+col only, plus tWR occupancy.
        assert!(last_delta <= 150 + 55 + 60 + 13 + 5 + 150);
        assert!(t.row_misses() >= 10);
    }
}
