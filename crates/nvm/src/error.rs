//! Typed media-operation failures.
//!
//! The device's legacy `read_line`/`write_line` interface keeps its
//! panicking capacity check (a wrong address in the simulator is a bug in
//! the caller, and every existing call site relies on that contract).
//! Layers that want *failure as a value* — the memory controller's
//! datapath, which must degrade gracefully when a fault campaign steers
//! traffic at a misbehaving device — validate addresses up front with
//! [`crate::NvmDevice::check_addr`] and propagate [`NvmError`] instead.

use std::fmt;

/// A media operation that could not be performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmError {
    /// The (DF-stripped) address lies beyond the device's capacity.
    OutOfRange {
        /// Offending byte address.
        addr: u64,
        /// Configured capacity in bytes.
        capacity: u64,
    },
    /// The address is within the device but outside the region the
    /// datapath is allowed to address (e.g. the encrypted-data window
    /// configured by the encryption layer).
    OutsideDataRegion {
        /// Offending byte address.
        addr: u64,
    },
}

impl fmt::Display for NvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmError::OutOfRange { addr, capacity } => {
                write!(f, "address {addr:#x} beyond device capacity {capacity:#x}")
            }
            NvmError::OutsideDataRegion { addr } => {
                write!(f, "address {addr:#x} outside the addressable data region")
            }
        }
    }
}

impl std::error::Error for NvmError {}
