//! Property tests for the NVM substrate: storage vs a flat reference,
//! address-decode bijectivity, and timing monotonicity.

use proptest::prelude::*;

use fsencr_nvm::{BankTiming, LineAddr, NvmDevice, PhysAddr, Storage, DF_BIT};
use fsencr_sim::config::NvmConfig;
use fsencr_sim::Cycle;

proptest! {
    #[test]
    fn storage_agrees_with_flat_reference(
        writes in prop::collection::vec((0u64..60_000, prop::collection::vec(any::<u8>(), 1..300)), 1..50)
    ) {
        let mut storage = Storage::new();
        let mut model = vec![0u8; 64 * 1024];
        for (offset, data) in &writes {
            let offset = *offset as usize % (model.len() - data.len());
            storage.write(PhysAddr::new(offset as u64), data);
            model[offset..offset + data.len()].copy_from_slice(data);
        }
        // Read back the entire region in odd-sized chunks.
        let mut buf = vec![0u8; 999];
        let mut pos = 0usize;
        while pos < model.len() {
            let take = buf.len().min(model.len() - pos);
            storage.read(PhysAddr::new(pos as u64), &mut buf[..take]);
            prop_assert_eq!(&buf[..take], &model[pos..pos + take]);
            pos += take;
        }
    }

    #[test]
    fn df_bit_never_affects_contents(addr in 0u64..(1 << 30), data in any::<[u8; 16]>()) {
        let mut s = Storage::new();
        s.write(PhysAddr::new(addr | DF_BIT), &data);
        let mut buf = [0u8; 16];
        s.read(PhysAddr::new(addr), &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn decode_is_total_and_stable(lines in prop::collection::vec(0u64..(1u64 << 28), 1..64)) {
        let t = BankTiming::new(NvmConfig::default());
        let banks = NvmConfig::default().total_banks();
        for l in lines {
            let line = LineAddr::new(l * 64);
            let a = t.decode(line);
            let b = t.decode(line);
            prop_assert_eq!(a, b, "decode must be deterministic");
            prop_assert!(a.bank < banks);
        }
    }

    #[test]
    fn lines_in_different_row_buffers_decode_differently(a in 0u64..(1 << 24)) {
        // Two addresses one row-buffer apart must not share (bank, row).
        let t = BankTiming::new(NvmConfig::default());
        let x = t.decode(LineAddr::new(a * 64));
        let y = t.decode(LineAddr::new(a * 64 + 1024));
        prop_assert_ne!((x.bank, x.row), (y.bank, y.row));
    }

    #[test]
    fn device_time_is_monotonic_per_request_chain(
        ops in prop::collection::vec((0u64..4096, any::<bool>()), 1..100)
    ) {
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let mut t = Cycle::ZERO;
        for (line, is_write) in ops {
            let addr = PhysAddr::new(line * 64);
            let done = if is_write {
                nvm.write_line(t, addr, &[0u8; 64])
            } else {
                nvm.read_line(t, addr).1
            };
            prop_assert!(done > t, "completion must be after issue");
            t = done;
        }
    }

    #[test]
    fn written_data_always_reads_back(ops in prop::collection::vec((0u64..256, any::<u8>()), 1..100)) {
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let mut model = std::collections::HashMap::new();
        let mut t = Cycle::ZERO;
        for (line, tag) in ops {
            let addr = PhysAddr::new(line * 64);
            t = nvm.write_line(t, addr, &[tag; 64]);
            model.insert(line, tag);
        }
        for (line, tag) in model {
            let (data, done) = nvm.read_line(t, PhysAddr::new(line * 64));
            t = done;
            prop_assert_eq!(data, [tag; 64]);
        }
    }
}
