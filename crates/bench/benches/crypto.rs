//! Criterion benches for the cryptographic primitives — the hot inner
//! loops of the simulator's functional datapath.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fsencr_crypto::ctr::{ctr_pads_n, line_pad, line_pad_with};
use fsencr_crypto::{
    digest8_line, digest8_lines4, hmac_sha256, pbkdf2_hmac_sha256, sha256, sha256_line,
    sha256_lines4, Aes128, Key128, PadDomain, PadInput, ScheduleCache,
};

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new(&Key128::from_seed(1));
    let block = [0x42u8; 16];
    c.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(block)))
    });
    c.bench_function("aes128_decrypt_block", |b| {
        let ct = aes.encrypt_block(block);
        b.iter(|| aes.decrypt_block(black_box(ct)))
    });
    c.bench_function("aes128_key_schedule", |b| {
        let key = Key128::from_seed(7);
        b.iter(|| Aes128::new(black_box(&key)))
    });
}

fn bench_pad(c: &mut Criterion) {
    let aes = Aes128::new(&Key128::from_seed(2));
    let input = PadInput {
        page_id: 0x1234,
        block_in_page: 7,
        major: 3,
        minor: 9,
        domain: PadDomain::File,
    };
    c.bench_function("ctr_line_pad_64B", |b| {
        b.iter(|| line_pad_with(&aes, black_box(&input)))
    });
    // The schedule-cache trade: a cached expanded key against re-running
    // AES key expansion for every pad (what the controller did before the
    // cache).
    let key = Key128::from_seed(2);
    c.bench_function("ctr_line_pad_cached_schedule", |b| {
        let mut cache = ScheduleCache::new();
        b.iter(|| line_pad_with(cache.get(black_box(&key)), black_box(&input)))
    });
    c.bench_function("ctr_line_pad_fresh_expansion", |b| {
        b.iter(|| line_pad(black_box(&key), black_box(&input)))
    });
    // The multi-lane kernel trade: four counter blocks through the AES
    // rounds together (sharing the barely-diverged rounds 1-2) against
    // the block-at-a-time loop, both on the same cached schedule.
    c.bench_function("ctr_pads_n_4_lanes", |b| {
        let mut pad = [0u8; 64];
        b.iter(|| {
            ctr_pads_n(&aes, black_box(&input), 4, &mut pad);
            pad[0]
        })
    });
    c.bench_function("ctr_pads_n_1_lane", |b| {
        let mut pad = [0u8; 64];
        b.iter(|| {
            ctr_pads_n(&aes, black_box(&input), 1, &mut pad);
            pad[0]
        })
    });
}

fn bench_hash(c: &mut Criterion) {
    let line = [0xabu8; 64];
    c.bench_function("sha256_64B_line", |b| b.iter(|| sha256(black_box(&line))));
    // The one-shot line fast path against the streaming hasher above —
    // the per-line digest the Merkle machinery computes.
    c.bench_function("sha256_line_fast_path", |b| {
        b.iter(|| sha256_line(black_box(&line)))
    });
    c.bench_function("digest8_line_fast_path", |b| {
        b.iter(|| digest8_line(black_box(&line)))
    });
    let page = vec![0xcdu8; 4096];
    c.bench_function("sha256_4KB_page", |b| b.iter(|| sha256(black_box(&page))));
    c.bench_function("hmac_sha256_64B", |b| {
        b.iter(|| hmac_sha256(black_box(b"key"), black_box(&line)))
    });
    c.bench_function("pbkdf2_16_iters", |b| {
        b.iter(|| {
            let mut dk = [0u8; 16];
            pbkdf2_hmac_sha256(black_box(b"passphrase"), b"salt", 16, &mut dk);
            dk
        })
    });
}

fn bench_lanes(c: &mut Criterion) {
    // Four distinct mixed-bit lines so the lanes do realistic work.
    let mut lines = [[0u8; 64]; 4];
    for (i, line) in lines.iter_mut().enumerate() {
        for (j, byte) in line.iter_mut().enumerate() {
            *byte = (i as u8).wrapping_mul(67).wrapping_add((j as u8).wrapping_mul(13)).wrapping_add(5);
        }
    }
    // The interleaved four-lane kernel against the same four digests via
    // one-shot calls — the trade the batched climb planner rides.
    c.bench_function("sha256_lines4_interleaved", |b| {
        b.iter(|| {
            let [l0, l1, l2, l3] = &lines;
            sha256_lines4([black_box(l0), l1, l2, l3])
        })
    });
    c.bench_function("sha256_line_x4_one_shot", |b| {
        b.iter(|| {
            [
                sha256_line(black_box(&lines[0])),
                sha256_line(&lines[1]),
                sha256_line(&lines[2]),
                sha256_line(&lines[3]),
            ]
        })
    });
    c.bench_function("digest8_lines4_interleaved", |b| {
        b.iter(|| {
            let [l0, l1, l2, l3] = &lines;
            digest8_lines4([black_box(l0), l1, l2, l3])
        })
    });
    c.bench_function("digest8_line_x4_one_shot", |b| {
        b.iter(|| {
            [
                digest8_line(black_box(&lines[0])),
                digest8_line(&lines[1]),
                digest8_line(&lines[2]),
                digest8_line(&lines[3]),
            ]
        })
    });
}

criterion_group!(benches, bench_aes, bench_pad, bench_hash, bench_lanes);
criterion_main!(benches);
