//! Criterion benches for the memory-system substrates: NVM device,
//! cache hierarchy, metadata system.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fsencr_cache::Hierarchy;
use fsencr_nvm::{LineAddr, NvmDevice, PageId, PhysAddr};
use fsencr_secmem::{MetadataLayout, MetadataSystem};
use fsencr_sim::config::{CpuConfig, NvmConfig, SecurityConfig};
use fsencr_sim::Cycle;

fn bench_nvm(c: &mut Criterion) {
    c.bench_function("nvm_read_line", |b| {
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            nvm.read_line(Cycle::ZERO, black_box(PhysAddr::new(i * 64)))
        })
    });
    c.bench_function("nvm_write_line", |b| {
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let data = [7u8; 64];
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            nvm.write_line(Cycle::ZERO, black_box(PhysAddr::new(i * 64)), &data)
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("hierarchy_l1_hit", |b| {
        let mut h = Hierarchy::new(&CpuConfig::default());
        h.fill(0, LineAddr::new(0), [1u8; 64]);
        b.iter(|| h.load(0, black_box(LineAddr::new(0))))
    });
    c.bench_function("hierarchy_store_stream", |b| {
        let mut h = Hierarchy::new(&CpuConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 64;
            h.store(0, black_box(LineAddr::new(i % (32 << 20))), [i as u8; 64])
        })
    });
}

fn bench_metadata(c: &mut Criterion) {
    c.bench_function("metadata_read_hit", |b| {
        let layout = MetadataLayout::new(1 << 20, 4096);
        let mut sys = MetadataSystem::new(layout, &SecurityConfig::default());
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let addr = sys.layout().mecb_addr(PageId::new(0));
        sys.read_block(&mut nvm, Cycle::ZERO, addr).unwrap();
        b.iter(|| sys.read_block(&mut nvm, Cycle::ZERO, black_box(addr)).unwrap())
    });
    c.bench_function("metadata_read_miss_verify", |b| {
        let layout = MetadataLayout::new(64 << 20, 4096);
        let mut sys = MetadataSystem::new(layout, &SecurityConfig::default());
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 97) % 16384; // stride past the cache
            let addr = sys.layout().mecb_addr(PageId::new(p));
            sys.read_block(&mut nvm, Cycle::ZERO, black_box(addr)).unwrap()
        })
    });
    c.bench_function("metadata_write_osiris", |b| {
        let layout = MetadataLayout::new(1 << 20, 4096);
        let mut sys = MetadataSystem::new(layout, &SecurityConfig::default());
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let addr = sys.layout().mecb_addr(PageId::new(1));
        let mut v = 0u8;
        b.iter(|| {
            v = v.wrapping_add(1);
            sys.write_block(&mut nvm, Cycle::ZERO, black_box(addr), [v; 64]).unwrap()
        })
    });
}

criterion_group!(benches, bench_nvm, bench_hierarchy, bench_metadata);
criterion_main!(benches);
