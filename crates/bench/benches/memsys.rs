//! Criterion benches for the memory-system substrates: NVM device,
//! cache hierarchy, metadata system.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fsencr_cache::Hierarchy;
use fsencr_nvm::{LineAddr, NvmDevice, PageId, PhysAddr};
use fsencr_secmem::{MetadataLayout, MetadataSystem};
use fsencr_sim::config::{CacheConfig, CpuConfig, NvmConfig, SecurityConfig};
use fsencr_sim::Cycle;

fn bench_nvm(c: &mut Criterion) {
    c.bench_function("nvm_read_line", |b| {
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            nvm.read_line(Cycle::ZERO, black_box(PhysAddr::new(i * 64)))
        })
    });
    c.bench_function("nvm_write_line", |b| {
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let data = [7u8; 64];
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            nvm.write_line(Cycle::ZERO, black_box(PhysAddr::new(i * 64)), &data)
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("hierarchy_l1_hit", |b| {
        let mut h = Hierarchy::new(&CpuConfig::default());
        h.fill(0, LineAddr::new(0), [1u8; 64]);
        b.iter(|| h.load(0, black_box(LineAddr::new(0))))
    });
    c.bench_function("hierarchy_store_stream", |b| {
        let mut h = Hierarchy::new(&CpuConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 64;
            h.store(0, black_box(LineAddr::new(i % (32 << 20))), [i as u8; 64])
        })
    });
}

fn bench_metadata(c: &mut Criterion) {
    c.bench_function("metadata_read_hit", |b| {
        let layout = MetadataLayout::new(1 << 20, 4096);
        let mut sys = MetadataSystem::new(layout, &SecurityConfig::default());
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let addr = sys.layout().mecb_addr(PageId::new(0));
        sys.read_block(&mut nvm, Cycle::ZERO, addr).unwrap();
        b.iter(|| sys.read_block(&mut nvm, Cycle::ZERO, black_box(addr)).unwrap())
    });
    c.bench_function("metadata_read_miss_verify", |b| {
        let layout = MetadataLayout::new(64 << 20, 4096);
        let mut sys = MetadataSystem::new(layout, &SecurityConfig::default());
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 97) % 16384; // stride past the cache
            let addr = sys.layout().mecb_addr(PageId::new(p));
            sys.read_block(&mut nvm, Cycle::ZERO, black_box(addr)).unwrap()
        })
    });
    c.bench_function("metadata_write_osiris", |b| {
        let layout = MetadataLayout::new(1 << 20, 4096);
        let mut sys = MetadataSystem::new(layout, &SecurityConfig::default());
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let addr = sys.layout().mecb_addr(PageId::new(1));
        let mut v = 0u8;
        b.iter(|| {
            v = v.wrapping_add(1);
            sys.write_block(&mut nvm, Cycle::ZERO, black_box(addr), [v; 64]).unwrap()
        })
    });
}

/// A metadata system with `pages` persisted MECB leaves and a metadata
/// cache of `cache_lines` lines — small caches force per-line verify
/// climbs to re-hash shared ancestors, which is exactly the redundancy
/// the batched region ops remove.
fn populated(pages: u64, cache_lines: usize) -> (MetadataSystem, NvmDevice, Vec<LineAddr>, Cycle) {
    let layout = MetadataLayout::new(pages * 4096, 4096);
    let mut cfg = SecurityConfig::default();
    cfg.metadata_cache = CacheConfig {
        size_bytes: cache_lines * 64,
        ways: 8,
        block_bytes: 64,
        latency_cycles: 3,
    };
    let mut sys = MetadataSystem::new(layout, &cfg);
    let mut nvm = NvmDevice::new(NvmConfig::default());
    let mut t = Cycle::ZERO;
    let addrs: Vec<LineAddr> =
        (0..pages).map(|p| sys.layout().mecb_addr(PageId::new(p))).collect();
    for (i, &addr) in addrs.iter().enumerate() {
        t = sys
            .write_block(&mut nvm, t, addr, [i as u8 + 1; 64])
            .unwrap()
            .done;
    }
    t = sys.flush(&mut nvm, t);
    (sys, nvm, addrs, t)
}

fn bench_merkle(c: &mut Criterion) {
    // Region verify, batched (`verify_lines`: one shared-ancestor plan,
    // four-lane hashing) against the equivalent chained `read_block`
    // loop, from the same cold post-crash state each iteration.
    for n in [1usize, 8, 64] {
        c.bench_function(&format!("merkle_verify_batched_{n}"), |b| {
            let (mut sys, mut nvm, addrs, _) = populated(64, 16);
            b.iter(|| {
                sys.crash();
                sys.verify_lines(&mut nvm, Cycle::ZERO, black_box(&addrs[..n])).unwrap()
            })
        });
        c.bench_function(&format!("merkle_verify_looped_{n}"), |b| {
            let (mut sys, mut nvm, addrs, _) = populated(64, 16);
            b.iter(|| {
                sys.crash();
                let mut t = Cycle::ZERO;
                for &addr in black_box(&addrs[..n]) {
                    t = sys.read_block(&mut nvm, t, addr).unwrap().1.done;
                }
                t
            })
        });
    }
    // Region persist of freshly dirtied leaves, batched
    // (`persist_blocks`) against the per-line `persist_block` loop. The
    // cache is large enough to hold the working set: the delta is the
    // host-side hashing of the new leaf contents.
    for n in [1usize, 8, 64] {
        c.bench_function(&format!("merkle_persist_batched_{n}"), |b| {
            let (mut sys, mut nvm, addrs, mut t) = populated(64, 256);
            let mut v = 0u8;
            b.iter(|| {
                v = v.wrapping_add(1);
                for (i, &addr) in addrs[..n].iter().enumerate() {
                    let bytes = [v ^ (i as u8).wrapping_mul(3); 64];
                    t = sys.write_block(&mut nvm, t, addr, bytes).unwrap().done;
                }
                t = sys.persist_blocks(&mut nvm, t, black_box(&addrs[..n])).unwrap();
                t
            })
        });
        c.bench_function(&format!("merkle_persist_looped_{n}"), |b| {
            let (mut sys, mut nvm, addrs, mut t) = populated(64, 256);
            let mut v = 0u8;
            b.iter(|| {
                v = v.wrapping_add(1);
                for (i, &addr) in addrs[..n].iter().enumerate() {
                    let bytes = [v ^ (i as u8).wrapping_mul(3); 64];
                    t = sys.write_block(&mut nvm, t, addr, bytes).unwrap().done;
                }
                for &addr in black_box(&addrs[..n]) {
                    t = sys.persist_block(&mut nvm, t, addr).unwrap();
                }
                t
            })
        });
    }
}

criterion_group!(benches, bench_nvm, bench_hierarchy, bench_metadata, bench_merkle);
criterion_main!(benches);
