//! Criterion benches for the FsEncr memory controller: the per-access
//! cost of the baseline-security path versus the dual-pad file path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fsencr::controller::{CtrlMode, MemoryController};
use fsencr::ott::OpenTunnelTable;
use fsencr_crypto::Key128;
use fsencr_nvm::{NvmDevice, PageId, PhysAddr};
use fsencr_secmem::MetadataLayout;
use fsencr_sim::config::{NvmConfig, SecurityConfig};
use fsencr_sim::Cycle;

fn controller(file_page: bool) -> MemoryController {
    let layout = MetadataLayout::new(16 << 20, 4096);
    let mut ctrl = MemoryController::new(
        CtrlMode::Encrypted,
        layout,
        &SecurityConfig::default(),
        Key128::from_seed(1),
        Key128::from_seed(2),
        NvmDevice::new(NvmConfig::default()),
    );
    if file_page {
        ctrl.install_key(Cycle::ZERO, 3, 5, Key128::from_seed(9)).unwrap();
        ctrl.stamp_file_page(Cycle::ZERO, PageId::new(0), 3, 5).unwrap();
    }
    // Prime the line so reads decrypt real ciphertext.
    ctrl.write_line(Cycle::ZERO, PhysAddr::new(0), &[0x11u8; 64]).unwrap();
    ctrl
}

fn bench_read_paths(c: &mut Criterion) {
    c.bench_function("ctrl_read_baseline_security", |b| {
        let mut ctrl = controller(false);
        b.iter(|| ctrl.read_line(Cycle::ZERO, black_box(PhysAddr::new(0))).unwrap())
    });
    c.bench_function("ctrl_read_fsencr_file_line", |b| {
        let mut ctrl = controller(true);
        b.iter(|| ctrl.read_line(Cycle::ZERO, black_box(PhysAddr::new(0))).unwrap())
    });
}

fn bench_write_paths(c: &mut Criterion) {
    c.bench_function("ctrl_write_baseline_security", |b| {
        let mut ctrl = controller(false);
        let data = [0x22u8; 64];
        b.iter(|| ctrl.write_line(Cycle::ZERO, black_box(PhysAddr::new(64)), &data).unwrap())
    });
    c.bench_function("ctrl_write_fsencr_file_line", |b| {
        let mut ctrl = controller(true);
        let data = [0x22u8; 64];
        b.iter(|| ctrl.write_line(Cycle::ZERO, black_box(PhysAddr::new(64)), &data).unwrap())
    });
}

fn bench_region_reads(c: &mut Criterion) {
    // A primed DF page: region reads against the per-line loop at batch
    // sizes 1/8/64. Simulated cycles are identical either way; the delta
    // is the amortized counter-block parses and schedule-cache probes.
    for lines in [1usize, 8, 64] {
        let addrs: Vec<PhysAddr> =
            (0..lines as u64).map(|l| PhysAddr::new(l * 64)).collect();
        c.bench_function(&format!("ctrl_read_lines_batched_{lines}"), |b| {
            let mut ctrl = controller(true);
            for &addr in &addrs {
                ctrl.write_line(Cycle::ZERO, addr, &[0x33u8; 64]).unwrap();
            }
            let mut t = Cycle::ZERO;
            let mut out = Vec::with_capacity(lines);
            b.iter(|| {
                out.clear();
                t = ctrl.read_lines(t, black_box(&addrs), &mut out).unwrap();
                out[0][0]
            })
        });
        c.bench_function(&format!("ctrl_read_line_looped_{lines}"), |b| {
            let mut ctrl = controller(true);
            for &addr in &addrs {
                ctrl.write_line(Cycle::ZERO, addr, &[0x33u8; 64]).unwrap();
            }
            let mut t = Cycle::ZERO;
            b.iter(|| {
                let mut acc = 0u8;
                for &addr in &addrs {
                    let (plain, done) = ctrl.read_line(t, black_box(addr)).unwrap();
                    acc ^= plain[0];
                    t = done;
                }
                acc
            })
        });
    }
}

fn bench_ott(c: &mut Criterion) {
    c.bench_function("ott_lookup_hit_1024_entries", |b| {
        let mut ott = OpenTunnelTable::new(1024, 20);
        for i in 0..1024u32 {
            ott.insert(i % 8, i, Key128::from_seed(i as u64));
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1024;
            ott.lookup(black_box(i % 8), black_box(i))
        })
    });
}

criterion_group!(benches, bench_read_paths, bench_write_paths, bench_region_reads, bench_ott);
criterion_main!(benches);
