//! Criterion benches for the persistent KV engines running on the full
//! simulated machine — simulator throughput for end-to-end operations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fsencr::machine::{Machine, MachineOpts, SecurityMode};
use fsencr_fs::{GroupId, Mode, UserId};
use fsencr_workloads::kv::{BTreeKv, HashKv};

fn machine(mode: SecurityMode) -> Machine {
    let mut opts = MachineOpts::small_test();
    opts.pmem_bytes = 32 << 20;
    Machine::new(opts, mode)
}

const KEYSPACE: u64 = 10_000;

fn bench_btree(c: &mut Criterion) {
    for mode in [SecurityMode::MemoryOnly, SecurityMode::FsEncr] {
        let mut m = machine(mode);
        let h = m
            .create(UserId::new(1), GroupId::new(1), "b.db", Mode::PRIVATE, Some("pw"))
            .unwrap();
        let map = m.mmap(&h).unwrap();
        let tree = BTreeKv::create(&mut m, 0, map).unwrap();
        // Pre-populate a bounded keyspace: subsequent puts overwrite
        // same-size values in place, so the benchmark is steady-state and
        // never exhausts the region regardless of iteration count.
        for k in 1..=KEYSPACE {
            tree.put(&mut m, 0, k, &[k as u8; 64]).unwrap();
        }
        let mut k = 0u64;
        c.bench_function(&format!("btree_put_64B_{mode}"), |b| {
            b.iter(|| {
                k = k % KEYSPACE + 1;
                tree.put(&mut m, 0, black_box(k), &[k as u8; 64]).unwrap()
            })
        });
        let mut buf = Vec::new();
        c.bench_function(&format!("btree_get_64B_{mode}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = i % KEYSPACE + 1;
                tree.get(&mut m, 0, black_box(i), &mut buf).unwrap()
            })
        });
    }
}

fn bench_hashmap(c: &mut Criterion) {
    let mut m = machine(SecurityMode::FsEncr);
    let h = m
        .create(UserId::new(1), GroupId::new(1), "h.db", Mode::PRIVATE, Some("pw"))
        .unwrap();
    let map = m.mmap(&h).unwrap();
    let kv = HashKv::create(&mut m, 0, map, 1 << 14, 128).unwrap();
    let mut k = 0u64;
    c.bench_function("hashmap_put_128B_fsencr", |b| {
        b.iter(|| {
            // bounded keyspace: overwrites after the first 8000 inserts
            k = k % 8000 + 1;
            kv.put(&mut m, 0, black_box(k), &[k as u8; 128]).unwrap()
        })
    });
}

criterion_group!(benches, bench_btree, bench_hashmap);
criterion_main!(benches);
