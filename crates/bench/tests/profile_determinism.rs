//! The observability layer must be invisible: profiles are byte-identical
//! at any worker count and under adversarial drain schedules, enabling
//! the observer never changes simulated timing, and the snapshot API
//! reproduces the legacy counters it replaces exactly.

use fsencr::machine::{Machine, MachineOpts, SecurityMode};
use fsencr_bench::pool::{self, Schedule};
use fsencr_bench::profile::profile;
use fsencr_bench::{fig8_9_10, Figure};
use fsencr_fs::{GroupId, Mode, UserId};
use fsencr_workloads::driver::{profile_workload, run_workload};
use fsencr_workloads::whisper::HashmapBench;

fn render_all(fig: &str) -> (String, String, String) {
    let r = profile(fig, 0.01, 1 << 14).expect("figure must be profilable");
    (r.render_text(), r.to_json(), r.to_chrome_trace())
}

#[test]
fn profile_fig8_is_byte_identical_across_jobs_and_schedules() {
    pool::set_jobs(1);
    let reference = render_all("fig8");
    for jobs in 2..=4 {
        pool::set_jobs(jobs);
        assert_eq!(render_all("fig8"), reference, "jobs={jobs}");
    }
    pool::set_jobs(4);
    for sched in [Schedule::Lifo, Schedule::EvenOdd, Schedule::Stagger] {
        pool::set_schedule(sched);
        assert_eq!(render_all("fig8"), reference, "{sched:?}");
    }
    pool::set_schedule(Schedule::Fifo);
    pool::set_jobs(0);
}

#[test]
fn observation_does_not_perturb_simulated_timing() {
    // The same workload with and without the observer must report
    // bit-identical measured statistics: attribution is pure bookkeeping.
    let plain = run_workload(
        MachineOpts::small_test(),
        SecurityMode::FsEncr,
        &mut HashmapBench::new(512, 2),
    )
    .unwrap()
    .stats;
    let observed = profile_workload(
        MachineOpts::small_test(),
        SecurityMode::FsEncr,
        &mut HashmapBench::new(512, 2),
        1 << 12,
    )
    .unwrap();
    let obs_stats = observed.result.stats;
    assert_eq!(plain.cycles, obs_stats.cycles);
    assert_eq!(plain.nvm_reads, obs_stats.nvm_reads);
    assert_eq!(plain.nvm_writes, obs_stats.nvm_writes);
    assert_eq!(plain.ott_hits, obs_stats.ott_hits);
    assert_eq!(plain.ott_misses, obs_stats.ott_misses);
    assert_eq!(plain.file_accesses, obs_stats.file_accesses);
    assert_eq!(plain.read_p50, obs_stats.read_p50);
    assert_eq!(plain.read_p99, obs_stats.read_p99);
    assert_eq!(plain.meta_hit_rate.to_bits(), obs_stats.meta_hit_rate.to_bits());
    assert_eq!(plain.tlb_hit_rate.to_bits(), obs_stats.tlb_hit_rate.to_bits());
    // And the observer actually recorded the run.
    assert!(observed.observer.metric("ctrl/write/total_cycles") > 0);
}

/// A profiling run between two figure runs must leave no trace: the
/// figures (observer disabled, as always) stay byte-identical.
#[test]
fn figures_are_unchanged_by_an_interleaved_profile_run() {
    let render = |f: &(Figure, Figure, Figure)| format!("{}{}{}", f.0, f.1, f.2);
    let before = render(&fig8_9_10(0.01));
    let _ = profile("fig8", 0.01, 1 << 12).unwrap();
    let after = render(&fig8_9_10(0.01));
    assert_eq!(before, after);
}

#[test]
fn snapshot_counters_are_internally_consistent() {
    // Pinned workload: file creation plus a strided write/persist/read mix.
    // The legacy accessors this test used to diff against are gone; the
    // invariants they witnessed are stated directly on the snapshot.
    let mut m = Machine::new(MachineOpts::small_test(), SecurityMode::FsEncr);
    let h = m
        .create(UserId::new(1), GroupId::new(1), "pin", Mode::PRIVATE, Some("pw"))
        .unwrap();
    let map = m.mmap(&h).unwrap();
    for i in 0..96u64 {
        m.write(0, map, i * 4096, &[i as u8; 128]).unwrap();
        m.persist(0, map, i * 4096, 128).unwrap();
    }
    let mut buf = [0u8; 128];
    for i in 0..96u64 {
        m.read(0, map, i * 4096, &mut buf).unwrap();
    }
    m.sync_cores();

    let s = m.snapshot();
    // The pinned mix actually exercised the datapath (reads are absorbed
    // by the cache hierarchy before the controller, so only writes are
    // guaranteed to reach it).
    assert!(s.writes >= 96, "{}", s.writes);
    assert!(s.file_accesses > 0);
    assert!(s.cycles > 0);
    // Per-structure leaf counters partition the coarse totals.
    assert_eq!(s.meta_leaf_hits, s.meta_mecb_hits + s.meta_fecb_hits + s.meta_spill_hits);
    assert_eq!(
        s.meta_leaf_misses,
        s.meta_mecb_misses + s.meta_fecb_misses + s.meta_spill_misses
    );
    // Node fetches and node misses are the same event; every leaf miss
    // starts exactly one climb, each at least one level deep.
    assert_eq!(s.meta_node_misses, s.meta_node_fetches);
    assert_eq!(s.meta_verify_climbs, s.meta_leaf_misses);
    assert!(s.meta_verify_levels >= s.meta_verify_climbs);
    // The derived hit rate is the canonical computation over the
    // snapshot's own counters, bit-for-bit.
    assert_eq!(
        s.meta_hit_rate().to_bits(),
        fsencr_sim::stats::hit_rate(s.meta_cache_hits, s.meta_cache_misses).to_bits()
    );
    assert_eq!(
        s.ott_hit_rate().to_bits(),
        fsencr_sim::stats::hit_rate(s.ott_hits, s.ott_misses).to_bits()
    );
    // The delta of two snapshots reproduces a window the way the old
    // reset-based measurement did: counters restart from zero.
    let mut m2 = m;
    m2.begin_measurement();
    m2.write(0, map, 0, &[0xA5; 64]).unwrap();
    m2.persist(0, map, 0, 64).unwrap();
    m2.sync_cores();
    let d = m2.measurement_snapshot();
    assert!(d.writes >= 1 && d.writes < 16, "window isolates the tail: {}", d.writes);
    assert!(d.cycles > 0 && d.cycles < m2.snapshot().cycles);
}
