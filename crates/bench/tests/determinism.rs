//! The parallel experiment engine must be an implementation detail: the
//! figures a run produces have to be bit-identical at any worker count.

use fsencr_bench::table::Figure;
use fsencr_bench::{fig8_9_10, pool};

fn assert_bit_identical(serial: &Figure, parallel: &Figure) {
    assert_eq!(serial.title, parallel.title);
    assert_eq!(serial.columns, parallel.columns);
    assert_eq!(serial.rows.len(), parallel.rows.len());
    for ((ls, vs), (lp, vp)) in serial.rows.iter().zip(parallel.rows.iter()) {
        assert_eq!(ls, lp, "row order must match");
        assert_eq!(vs.len(), vp.len());
        for (a, b) in vs.iter().zip(vp.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}/{ls}: serial {a} != parallel {b}",
                serial.title
            );
        }
    }
    // And the rendered output — what the harness actually prints — must
    // be byte-identical too.
    assert_eq!(format!("{serial}"), format!("{parallel}"));
}

#[test]
fn fig8_with_four_jobs_matches_serial_exactly() {
    pool::set_jobs(1);
    let (s_slow, s_writes, s_reads) = fig8_9_10(0.01);
    pool::set_jobs(4);
    let (p_slow, p_writes, p_reads) = fig8_9_10(0.01);
    pool::set_jobs(0);
    assert_bit_identical(&s_slow, &p_slow);
    assert_bit_identical(&s_writes, &p_writes);
    assert_bit_identical(&s_reads, &p_reads);
}
