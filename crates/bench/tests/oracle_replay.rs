//! Oracle replay: the paper's security argument, executed.
//!
//! The figure workloads, a passphrase rekey and Osiris crash recovery
//! all run with the runtime security oracles armed — the pad-uniqueness
//! ledger panics if any (key, IV) counter-mode pad is ever issued twice
//! over different content, and the Merkle-coverage walker panics if a
//! persisted metadata line is not reachable from the on-chip root. A
//! clean run here is the paper's counter-discipline and
//! coverage-invariant claims holding over the real datapath, not over a
//! hand-picked unit-test slice.
//!
//! The oracles must also be *free* when disarmed: the same figure runs
//! with the switches off have to render byte-identically, proving the
//! shipping figures owe nothing to observer effects.

use fsencr::machine::{Machine, MachineOpts, SecurityMode};
use fsencr_bench::table::Figure;
use fsencr_bench::{fig3, fig8_9_10};
use fsencr_fs::{AccessKind, GroupId, Mode, UserId};

const ALICE: UserId = UserId::new(1);
const STAFF: GroupId = GroupId::new(3);

fn render(figs: &[&Figure]) -> String {
    figs.iter()
        .map(|f| format!("{f}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn figure_workloads_replay_clean_under_oracles_and_identically_without() {
    // Armed window: every machine the experiment engine constructs —
    // including the ones built on worker threads — samples the
    // process-wide switches at build time, so the whole Whisper and
    // PMEMKV matrix replays under both oracles. Any pad reuse or
    // coverage gap aborts the run.
    fsencr_crypto::set_pads_enabled(true);
    fsencr_secmem::set_coverage_enabled(true);
    let fig3_on = fig3(0.01);
    let (slow_on, writes_on, reads_on) = fig8_9_10(0.01);
    fsencr_crypto::set_pads_enabled(false);
    fsencr_secmem::set_coverage_enabled(false);

    // Disarmed re-run: the oracles only observe, so every figure the
    // harness would print must come back byte-identical.
    let fig3_off = fig3(0.01);
    let (slow_off, writes_off, reads_off) = fig8_9_10(0.01);
    assert_eq!(
        render(&[&fig3_on, &slow_on, &writes_on, &reads_on]),
        render(&[&fig3_off, &slow_off, &writes_off, &reads_off]),
        "figure bytes must not depend on the oracle switches"
    );
}

#[test]
fn rekey_and_crash_recovery_replay_clean_under_armed_oracles() {
    // Per-instance arming (not the process switches) keeps this test
    // independent of the figure test running concurrently in another
    // thread of the same binary.
    let mut m = Machine::new(MachineOpts::small_test(), SecurityMode::FsEncr);
    m.set_security_oracles(true);
    let h = m
        .create(ALICE, STAFF, "ledger", Mode::PRIVATE, Some("pw"))
        .unwrap();
    let map = m.mmap(&h).unwrap();

    // Counter-advancing traffic: the same lines re-written and persisted
    // well past the Osiris stop-loss, so cached minors run ahead of
    // their media copies and every fresh pad lands in the ledger.
    for round in 0..12u8 {
        for line in 0..8u64 {
            m.write(0, map, line * 64, &[round ^ line as u8; 64]).unwrap();
        }
        m.persist(0, map, 0, 8 * 64).unwrap();
    }
    assert!(
        m.controller().pad_oracle_distinct() > 0,
        "armed ledger must have recorded the write traffic"
    );

    // Rekey: wraps a fresh file key and re-encrypts the file's pages.
    // New-key pads legally coincide with old-key IVs; the ledger keys by
    // (key, IV) so this must replay clean.
    m.rekey(ALICE, "ledger", "pw", "pw2").unwrap();
    m.write(0, map, 0, b"post-rekey write").unwrap();
    m.persist(0, map, 0, 16).unwrap();

    // Crash, Osiris recovery, remount. Recovery re-encrypts lines under
    // counters it proved via the ECC oracle — idempotent re-issues of
    // pre-crash pads over identical content, which the ledger accepts.
    m.crash();
    let report = m.recover();
    assert_eq!(report.unrecoverable, 0, "{report:?}");
    // Exact-repair oracle: with nothing quarantined, the Merkle rebuild
    // must reset precisely zero leaves — the skip-set prediction. (The
    // rebuild itself asserts list equality; the report surfaces the
    // count.)
    assert_eq!(report.metadata_reset, 0, "{report:?}");
    let h = m
        .open(ALICE, &[STAFF], "ledger", AccessKind::Read, Some("pw2"))
        .unwrap();
    let map = m.mmap(&h).unwrap();
    let mut buf = [0u8; 16];
    m.read(0, map, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"post-rekey write");

    // Post-recovery writes: recovered counters must advance past every
    // pre-crash issue — a rollback would re-pair an old IV with new
    // bytes and trip the ledger on the spot.
    let h = m
        .open(ALICE, &[STAFF], "ledger", AccessKind::Write, Some("pw2"))
        .unwrap();
    let map = m.mmap(&h).unwrap();
    for round in 0..6u8 {
        for line in 0..8u64 {
            m.write(0, map, line * 64, &[0xA0 | round ^ line as u8; 64])
                .unwrap();
        }
        m.persist(0, map, 0, 8 * 64).unwrap();
    }
    m.shutdown_flush().unwrap();
}
