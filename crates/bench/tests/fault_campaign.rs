//! Acceptance properties of the deterministic fault-injection subsystem:
//!
//! * `FAULTS_report.json` is byte-identical for the same seed at any
//!   worker count and under every [`Schedule`] policy — fault campaigns
//!   are replayable evidence, not flaky observations.
//! * An armed-but-empty (or armed-then-disarmed) injector is invisible:
//!   simulated cycles, statistics and data bytes are bit-equal to a
//!   machine that never saw the fault API. The datapath pays one branch,
//!   nothing else.
//! * Whatever the seed, every in-coverage corruption the injector
//!   applies is detected — `undetected_in_coverage` stays 0.
//!
//! Kept as one sequential test where the pool globals are involved: jobs
//! and schedule are process-wide.

use proptest::prelude::*;

use fsencr::snapshot::StatsSnapshot;
use fsencr::{Machine, MachineOpts, SecurityMode};
use fsencr_bench::pool::{self, Schedule};
use fsencr_bench::faultcamp;
use fsencr_faults::{CampaignSpec, FaultPlan};
use fsencr_fs::{GroupId, Mode, UserId};

#[test]
fn report_is_byte_identical_across_jobs_and_schedules() {
    let spec: CampaignSpec = "scenarios=3,ops=24".parse().unwrap();
    let jobs0 = pool::jobs();
    let sched0 = pool::schedule();

    let reference = faultcamp::run_campaign(42, &spec).to_json();
    for jobs in [1, 4] {
        for sched in [Schedule::Fifo, Schedule::Lifo, Schedule::EvenOdd, Schedule::Stagger] {
            pool::set_jobs(jobs);
            pool::set_schedule(sched);
            let got = faultcamp::run_campaign(42, &spec).to_json();
            assert_eq!(got, reference, "report diverged at jobs={jobs} sched={sched:?}");
        }
    }

    pool::set_jobs(jobs0);
    pool::set_schedule(sched0);
}

#[test]
fn different_seeds_give_different_reports() {
    let spec: CampaignSpec = "scenarios=2,ops=16".parse().unwrap();
    let a = faultcamp::run_campaign(42, &spec).to_json();
    let b = faultcamp::run_campaign(43, &spec).to_json();
    assert_ne!(a, b, "seed must steer the campaign");
}

/// Drives a fixed small workload and returns the stats snapshot plus
/// every byte read back.
fn drive(m: &mut Machine) -> (StatsSnapshot, Vec<u8>) {
    let user = UserId::new(1);
    let h = m
        .create(user, GroupId::new(1), "neutral.bin", Mode::PRIVATE, Some("pw"))
        .unwrap();
    let map = m.mmap(&h).unwrap();
    for i in 0u64..16 {
        let block = [i as u8 ^ 0x5A; 128];
        m.write(0, map, i * 128, &block).unwrap();
        m.persist(0, map, i * 128, 128).unwrap();
    }
    let mut data = vec![0u8; 16 * 128];
    m.read(0, map, 0, &mut data).unwrap();
    (m.snapshot(), data)
}

#[test]
fn empty_or_disarmed_injector_is_invisible() {
    // Baseline: the fault API is never touched.
    let mut base = Machine::new(MachineOpts::small_test(), SecurityMode::FsEncr);
    let (snap_base, data_base) = drive(&mut base);

    // An armed-but-empty plan: hooks run on every access, apply nothing.
    let mut empty = Machine::new(MachineOpts::small_test(), SecurityMode::FsEncr);
    empty.fault_plane().arm(FaultPlan::empty());
    let (snap_empty, data_empty) = drive(&mut empty);
    assert!(empty.fault_plane().disarm().is_empty(), "empty plan applied a fault");

    // Armed and disarmed again before any traffic.
    let mut cycled = Machine::new(MachineOpts::small_test(), SecurityMode::FsEncr);
    cycled.fault_plane().arm(FaultPlan::empty());
    let _ = cycled.fault_plane().disarm();
    let (snap_cycled, data_cycled) = drive(&mut cycled);

    assert_eq!(data_base, data_empty, "empty injector changed data bytes");
    assert_eq!(data_base, data_cycled, "disarmed injector changed data bytes");
    assert_eq!(snap_base, snap_empty, "empty injector changed simulated stats");
    assert_eq!(snap_base, snap_cycled, "disarmed injector changed simulated stats");
}

proptest! {
    /// The tentpole safety property, quantified over seeds: whatever the
    /// injector does, nothing it corrupts inside coverage survives the
    /// audit undetected — and the campaign is not vacuous (faults are
    /// planned, and the report re-derives byte-identically).
    #[test]
    fn no_seed_produces_undetected_in_coverage_corruption(seed in 0u64..24) {
        let spec: CampaignSpec = "scenarios=2,ops=20".parse().unwrap();
        let report = faultcamp::run_campaign(seed, &spec);
        prop_assert_eq!(
            report.undetected_in_coverage(),
            0,
            "seed {} let silent corruption through",
            seed
        );
        prop_assert!(report.to_json() == faultcamp::run_campaign(seed, &spec).to_json());
    }
}
