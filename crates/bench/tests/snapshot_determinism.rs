//! Snapshot warm starts must be an implementation detail: the same
//! post-setup snapshots, restored at any worker count and under any
//! pool schedule, must render byte-identical figures. Together with the
//! epoch-replay suite (stats snapshots stitch identically at any
//! `--jobs`/schedule, `crates/bench/src/epochs.rs`) and the fault
//! campaign suite (the snapshot-seeded `FAULTS_report.json` is
//! byte-identical across jobs and schedules,
//! `crates/bench/tests/fault_campaign.rs`), this pins the whole
//! checkpoint/replay subsystem to the determinism bar the figures set.
//!
//! Kept as a single test: the snapshot store and the worker pool are
//! process-global, so the phases must run sequentially.

use fsencr_bench as exp;
use fsencr_bench::{pool, snapstore};

#[test]
fn warm_started_figures_are_byte_identical_at_any_jobs_and_schedule() {
    const SCALE: f64 = 0.01;
    let dir = std::env::temp_dir().join(format!("fsencr-snapstore-test-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let render = |figs: (exp::table::Figure, exp::table::Figure, exp::table::Figure)| {
        format!("{}\n{}\n{}", figs.0, figs.1, figs.2)
    };

    // Reference: store disabled, every setup simulated in-process.
    snapstore::configure(None);
    let reference = render(exp::fig12_13_14(SCALE));

    // Cold pass captures post-setup snapshots as it goes. Cells sharing
    // a setup already warm-start within this run (entries are written
    // immediately), so only `stores` is asserted, not all-miss.
    snapstore::configure(Some(dir.clone()));
    let cold = render(exp::fig12_13_14(SCALE));
    let (_, misses, stores) = snapstore::counters();
    snapstore::configure(None);
    assert!(stores > 0, "cold pass must capture snapshots");
    assert!(misses > 0, "cold pass must consult the store");
    assert_eq!(reference, cold, "capturing snapshots changed figure bytes");

    // Warm passes: every worker count and schedule restores the same
    // snapshots — no cold setup anywhere — and must render the same
    // bytes as the fully simulated reference.
    for (jobs, sched) in [
        (1, pool::Schedule::Fifo),
        (4, pool::Schedule::Fifo),
        (1, pool::Schedule::Lifo),
        (4, pool::Schedule::EvenOdd),
        (4, pool::Schedule::Stagger),
    ] {
        pool::set_jobs(jobs);
        pool::set_schedule(sched);
        snapstore::configure(Some(dir.clone()));
        let warm = render(exp::fig12_13_14(SCALE));
        let (hits, misses, _) = snapstore::counters();
        snapstore::configure(None);
        assert!(hits > 0, "jobs={jobs} {sched:?}: warm pass must hit the store");
        assert_eq!(misses, 0, "jobs={jobs} {sched:?}: warm pass fell back to cold setup");
        assert_eq!(reference, warm, "jobs={jobs} {sched:?}: warm start changed figure bytes");
    }
    pool::set_jobs(0);
    pool::set_schedule(pool::Schedule::Fifo);
    std::fs::remove_dir_all(&dir).ok();
}
