//! The figure-cell cache must be behaviorally invisible: the same figure
//! rendered with the cache disabled, with a cold cache (all misses), and
//! with a hot cache (all hits, no simulation at all) must be
//! byte-identical. This is the acceptance property behind the
//! `CACHE_cells.json` fast path — a stale or lossy cache would show up
//! here as a diff.
//!
//! Kept as a single test: the cache is process-global, so the phases
//! must run sequentially.

use fsencr_bench as exp;
use fsencr_bench::cellcache;

#[test]
fn figure_output_is_identical_disabled_cold_and_hot() {
    const SCALE: f64 = 0.01;
    let dir = std::env::temp_dir().join(format!("fsencr-cellcache-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("CACHE_cells.json");

    // Reference: cache disabled, every cell simulated.
    cellcache::configure(None);
    let disabled = exp::fig3(SCALE).to_string();

    // Cold: same cells simulated, results recorded.
    cellcache::configure(Some(path.clone()));
    let cold = exp::fig3(SCALE).to_string();
    let (hits, misses) = cellcache::counters();
    assert_eq!(hits, 0, "a fresh cache cannot hit");
    assert!(misses > 0, "cold run must consult the cache");
    cellcache::persist().expect("persist cache");
    cellcache::configure(None);

    // Hot: reloaded from disk, every cell served without simulating.
    cellcache::configure(Some(path));
    let hot = exp::fig3(SCALE).to_string();
    let (hits, misses) = cellcache::counters();
    assert!(hits > 0, "hot run must hit");
    assert_eq!(misses, 0, "hot run must not re-simulate anything");
    cellcache::configure(None);

    assert_eq!(disabled, cold, "cold cache changed the rendered figure");
    assert_eq!(cold, hot, "hot cache changed the rendered figure");
    let _ = std::fs::remove_dir_all(&dir);
}
