//! `fsenctl` — an interactive/scriptable shell over the simulated FsEncr
//! machine.
//!
//! ```sh
//! cargo run --release -p fsencr-bench --bin fsenctl [mode]
//! echo -e "create f 1 1 600 pw\nwrite f 0 hi\nread f 0 2" | fsenctl fsencr
//! ```
//!
//! `mode` is one of `dax`, `baseline`, `fsencr` (default), `software`.

#![forbid(unsafe_code)]

use std::io::{BufRead, Write};

use fsencr::machine::{MachineOpts, Preset, SecurityMode};
use fsencr_bench::shell::{Shell, ShellOutcome};

fn main() {
    let mode = match std::env::args().nth(1).as_deref() {
        None | Some("fsencr") => SecurityMode::FsEncr,
        Some("dax") => SecurityMode::Unencrypted,
        Some("baseline") => SecurityMode::MemoryOnly,
        Some("software") => SecurityMode::Software,
        Some(other) => {
            eprintln!("unknown mode {other}: use dax|baseline|fsencr|software");
            std::process::exit(2);
        }
    };
    let opts = MachineOpts::preset(Preset::SmallTest)
        .general_bytes(8 << 20)
        .pmem_bytes(16 << 20)
        .build();
    let mut shell = Shell::new(mode, opts);

    let interactive = std::env::var_os("FSENCTL_BATCH").is_none();
    let stdin = std::io::stdin();
    if interactive {
        println!("fsenctl — simulated FsEncr machine ({mode}); `help` for commands");
    }
    loop {
        if interactive {
            print!("fsenctl> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match shell.exec(line.trim()) {
            ShellOutcome::Quit => break,
            ShellOutcome::Output(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
        }
    }
}
