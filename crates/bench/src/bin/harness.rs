//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! harness <experiment> [scale]
//!
//! experiments:
//!   fig3        software-encryption overhead (Whisper)
//!   fig8-10     PMEMKV slowdown / writes / reads
//!   fig11       Whisper slowdown / writes / reads + reduction
//!   fig12-14    DAX micro-benchmarks
//!   fig15       metadata-cache sensitivity
//!   table1      vulnerability matrix
//!   params      Table III simulation parameters
//!   list        Table II workload descriptions
//!   ablation-ott / ablation-osiris / ablation-direct / ablation-partition
//!   all         everything above (slow)
//! ```
//!
//! `scale` in (0, 1] shrinks operation counts; default 1.0. Run with
//! `--release`.

use fsencr_bench as exp;
use fsencr_sim::MachineConfig;

fn usage() -> ! {
    eprintln!(
        "usage: harness <fig3|fig8-10|fig11|fig12-14|fig15|table1|params|list|ablation-ott|ablation-osiris|ablation-direct|ablation-partition|all> [scale]"
    );
    std::process::exit(2);
}

fn params() {
    let cfg = MachineConfig::paper_defaults();
    println!("\n=== Table III: simulation parameters ===");
    println!("CPU: {} cores @ {} MHz, out-of-order x86-64 (modelled request-level)", cfg.cpu.cores, cfg.cpu.freq_mhz);
    for (name, c) in [("L1", cfg.cpu.l1), ("L2", cfg.cpu.l2), ("L3", cfg.cpu.l3)] {
        println!(
            "{name}: {} KiB, {}-way, {}B lines, {} cycles",
            c.size_bytes / 1024,
            c.ways,
            c.block_bytes,
            c.latency_cycles
        );
    }
    let n = cfg.nvm;
    println!(
        "NVM: {} GiB PCM, {} ranks/ch x {} banks, {} B row buffer, read {} ns / write {} ns",
        n.capacity_bytes >> 30,
        n.ranks_per_channel,
        n.banks_per_rank,
        n.row_buffer_bytes,
        n.read_ns,
        n.write_ns
    );
    println!(
        "timing: tRCD {} ns, tCL {} ns, tBURST {} ns, tWR {} ns",
        n.t_rcd_ns, n.t_cl_ns, n.t_burst_ns, n.t_wr_ns
    );
    let s = cfg.security;
    println!(
        "security: AES {} ns, metadata cache {} KiB {}-way, Merkle {}-ary (<= {} levels), OTT {} entries @ {} cycles, Osiris stop-loss {}",
        s.aes_ns,
        s.metadata_cache.size_bytes / 1024,
        s.metadata_cache.ways,
        s.merkle_arity,
        s.merkle_levels,
        s.ott_entries(),
        s.ott_latency_cycles,
        s.osiris_stop_loss
    );
}

fn list() {
    println!("\n=== Table II: benchmark descriptions ===");
    let rows = [
        ("DAX-1", "reads 1 byte after each 16 bytes of a persistent DAX file"),
        ("DAX-2", "reads 1 byte after each 128 bytes of a persistent DAX file"),
        ("DAX-3", "initialises two 16 B arrays at two locations and swaps them"),
        ("DAX-4", "initialises two 128 B arrays at two locations and swaps them"),
        ("Fillseq-S/L", "btree loads values (64 B / 4 KiB) in sequential key order"),
        ("Fillrandom-S/L", "btree loads values in random key order"),
        ("Overwrite-S/L", "btree replaces values in random key order"),
        ("Readrandom-S/L", "btree reads values in random key order"),
        ("Readseq-S/L", "btree reads values via an in-order leaf scan"),
        ("YCSB", "zipfian 50/50 read/update over a persistent hashmap, 2 workers"),
        ("Hashmap", "insert/lookup mix, 128 B records, 2 threads"),
        ("CTree", "insert/lookup mix on a persistent binary tree, 128 B, 2 threads"),
    ];
    for (name, desc) in rows {
        println!("{name:16} {desc}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(which) = args.get(1) else { usage() };
    let scale: f64 = args
        .get(2)
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(1.0);
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");

    let t0 = std::time::Instant::now();
    match which.as_str() {
        "fig3" => println!("{}", exp::fig3(scale)),
        "fig8-10" | "fig8" | "fig9" | "fig10" => {
            let (a, b, c) = exp::fig8_9_10(scale);
            println!("{a}{b}{c}");
        }
        "fig11" => {
            let (a, b, c, d) = exp::fig11(scale);
            println!("{a}{b}{c}{d}");
        }
        "fig12-14" | "fig12" | "fig13" | "fig14" => {
            let (a, b, c) = exp::fig12_13_14(scale);
            println!("{a}{b}{c}");
        }
        "fig15" => println!("{}", exp::fig15(scale)),
        "table1" => println!("{}", exp::table1()),
        "params" => params(),
        "list" => list(),
        "ablation-ott" => println!("{}", exp::ablation_ott(scale)),
        "ablation-osiris" => println!("{}", exp::ablation_osiris(scale)),
        "ablation-direct" => println!("{}", exp::ablation_direct(scale)),
        "ablation-partition" => println!("{}", exp::ablation_partition(scale)),
        "all" => {
            params();
            list();
            println!("{}", exp::table1());
            println!("{}", exp::fig3(scale));
            let (a, b, c) = exp::fig8_9_10(scale);
            println!("{a}{b}{c}");
            let (a, b, c, d) = exp::fig11(scale);
            println!("{a}{b}{c}{d}");
            let (a, b, c) = exp::fig12_13_14(scale);
            println!("{a}{b}{c}");
            println!("{}", exp::fig15(scale));
            println!("{}", exp::ablation_ott(scale));
            println!("{}", exp::ablation_osiris(scale));
            println!("{}", exp::ablation_direct(scale));
            println!("{}", exp::ablation_partition(scale));
        }
        _ => usage(),
    }
    eprintln!("[harness] completed in {:.1?}", t0.elapsed());
}
