//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! harness [--jobs N] <experiment> [scale]
//!
//! experiments:
//!   fig3        software-encryption overhead (Whisper)
//!   fig8-10     PMEMKV slowdown / writes / reads
//!   fig11       Whisper slowdown / writes / reads + reduction
//!   fig12-14    DAX micro-benchmarks
//!   fig15       metadata-cache sensitivity
//!   table1      vulnerability matrix
//!   params      Table III simulation parameters
//!   list        Table II workload descriptions
//!   bench       engine + AES self-benchmark -> BENCH_harness.json
//!   profile <fig> [scale]
//!               cycle-attribution profile of a figure's cells
//!               -> stdout + PROFILE_<fig>.json + PROFILE_<fig>_trace.json
//!   ablation-ott / ablation-osiris / ablation-direct / ablation-partition
//!   all         everything above except bench (slow)
//! ```
//!
//! `scale` in (0, 1] shrinks operation counts; default 1.0. Run with
//! `--release`.
//!
//! `--jobs N` (or the `FSENCR_JOBS` environment variable) sets how many
//! experiment cells run concurrently; the default is the host's available
//! parallelism. The figures are identical at any worker count — only the
//! wall-clock changes.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use fsencr_bench as exp;
use fsencr_bench::report::{AesThroughput, BenchReport};
use fsencr_crypto::{Aes128, Key128};
use fsencr_sim::MachineConfig;

fn usage() -> ! {
    eprintln!(
        "usage: harness [--jobs N] <fig3|fig8-10|fig11|fig12-14|fig15|table1|params|list|bench|ablation-ott|ablation-osiris|ablation-direct|ablation-partition|all> [scale]\n       harness [--jobs N] profile <fig3|fig8-10|fig11|fig12-14> [scale]"
    );
    std::process::exit(2);
}

fn params() {
    let cfg = MachineConfig::paper_defaults();
    println!("\n=== Table III: simulation parameters ===");
    println!("CPU: {} cores @ {} MHz, out-of-order x86-64 (modelled request-level)", cfg.cpu.cores, cfg.cpu.freq_mhz);
    for (name, c) in [("L1", cfg.cpu.l1), ("L2", cfg.cpu.l2), ("L3", cfg.cpu.l3)] {
        println!(
            "{name}: {} KiB, {}-way, {}B lines, {} cycles",
            c.size_bytes / 1024,
            c.ways,
            c.block_bytes,
            c.latency_cycles
        );
    }
    let n = cfg.nvm;
    println!(
        "NVM: {} GiB PCM, {} ranks/ch x {} banks, {} B row buffer, read {} ns / write {} ns",
        n.capacity_bytes >> 30,
        n.ranks_per_channel,
        n.banks_per_rank,
        n.row_buffer_bytes,
        n.read_ns,
        n.write_ns
    );
    println!(
        "timing: tRCD {} ns, tCL {} ns, tBURST {} ns, tWR {} ns",
        n.t_rcd_ns, n.t_cl_ns, n.t_burst_ns, n.t_wr_ns
    );
    let s = cfg.security;
    println!(
        "security: AES {} ns, metadata cache {} KiB {}-way, Merkle {}-ary (<= {} levels), OTT {} entries @ {} cycles, Osiris stop-loss {}",
        s.aes_ns,
        s.metadata_cache.size_bytes / 1024,
        s.metadata_cache.ways,
        s.merkle_arity,
        s.merkle_levels,
        s.ott_entries(),
        s.ott_latency_cycles,
        s.osiris_stop_loss
    );
}

fn list() {
    println!("\n=== Table II: benchmark descriptions ===");
    let rows = [
        ("DAX-1", "reads 1 byte after each 16 bytes of a persistent DAX file"),
        ("DAX-2", "reads 1 byte after each 128 bytes of a persistent DAX file"),
        ("DAX-3", "initialises two 16 B arrays at two locations and swaps them"),
        ("DAX-4", "initialises two 128 B arrays at two locations and swaps them"),
        ("Fillseq-S/L", "btree loads values (64 B / 4 KiB) in sequential key order"),
        ("Fillrandom-S/L", "btree loads values in random key order"),
        ("Overwrite-S/L", "btree replaces values in random key order"),
        ("Readrandom-S/L", "btree reads values in random key order"),
        ("Readseq-S/L", "btree reads values via an in-order leaf scan"),
        ("YCSB", "zipfian 50/50 read/update over a persistent hashmap, 2 workers"),
        ("Hashmap", "insert/lookup mix, 128 B records, 2 threads"),
        ("CTree", "insert/lookup mix on a persistent binary tree, 128 B, 2 threads"),
    ];
    for (name, desc) in rows {
        println!("{name:16} {desc}");
    }
}

/// Measures raw single-thread AES block throughput: the T-table hot path
/// against the byte-wise reference it replaced.
fn aes_throughput() -> AesThroughput {
    let aes = Aes128::new(&Key128::from_seed(0x5eed));
    let blocks_per_sec = |f: &dyn Fn([u8; 16]) -> [u8; 16]| {
        let mut block = [0x3cu8; 16];
        // Warm up tables and caches.
        for _ in 0..1_000 {
            block = f(block);
        }
        let mut blocks = 0u64;
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(200) {
            for _ in 0..4_096 {
                block = f(block);
            }
            blocks += 4_096;
        }
        // Feed the chained block back in so the loop cannot be elided.
        std::hint::black_box(block);
        blocks as f64 / start.elapsed().as_secs_f64()
    };
    AesThroughput {
        ttable_blocks_per_sec: blocks_per_sec(&|b| aes.encrypt_block(b)),
        reference_blocks_per_sec: blocks_per_sec(&|b| aes.encrypt_block_ref(b)),
    }
}

/// Times one full `fig8_9_10` pass at `scale` with a fixed worker count.
fn timed_fig8(jobs: usize, scale: f64) -> Duration {
    exp::pool::set_jobs(jobs);
    let start = Instant::now();
    let (a, b, c) = exp::fig8_9_10(scale);
    std::hint::black_box((a, b, c));
    start.elapsed()
}

/// `harness bench`: emits `BENCH_harness.json` with the AES fast-path
/// speedup and the serial-vs-parallel experiment-engine comparison.
fn bench(scale: f64, jobs_flag: Option<usize>) {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs = jobs_flag.unwrap_or_else(exp::pool::jobs);
    eprintln!("[bench] AES throughput (single thread)...");
    let aes = aes_throughput();
    eprintln!(
        "[bench]   ttable {:.0} blk/s, reference {:.0} blk/s, speedup {:.2}x",
        aes.ttable_blocks_per_sec,
        aes.reference_blocks_per_sec,
        aes.speedup()
    );
    eprintln!("[bench] engine serial run (jobs=1, scale {scale})...");
    exp::report::take_cell_records();
    let serial_wall = timed_fig8(1, scale);
    exp::report::take_cell_records();
    eprintln!("[bench] engine parallel run (jobs={jobs})...");
    let parallel_wall = timed_fig8(jobs, scale);
    let mut cells = exp::report::take_cell_records();
    cells.sort_by(|a, b| (&a.workload, &a.mode).cmp(&(&b.workload, &b.mode)));
    exp::pool::set_jobs(0);
    let report = BenchReport {
        jobs,
        host_parallelism: host,
        scale,
        aes,
        serial_wall,
        parallel_wall,
        cells,
    };
    eprintln!(
        "[bench]   serial {:.2?}, parallel {:.2?}, speedup {:.2}x",
        serial_wall,
        parallel_wall,
        report.engine_speedup()
    );
    let path = "BENCH_harness.json";
    std::fs::write(path, report.to_json()).expect("write BENCH_harness.json");
    eprintln!("[bench] wrote {path}");
}

/// `harness profile <fig>`: re-runs the figure's cells with the machine
/// observer enabled and emits the per-cell cycle-attribution breakdown,
/// plus JSON and chrome-trace exports next to the working directory.
fn profile(fig: &str, scale: f64) {
    let Some(report) = exp::profile::profile(fig, scale, exp::profile::DEFAULT_SPAN_CAPACITY)
    else {
        eprintln!("[profile] `{fig}` has no profilable cell matrix (try fig3, fig8-10, fig11, fig12-14)");
        std::process::exit(2);
    };
    print!("{}", report.render_text());
    let json_path = format!("PROFILE_{fig}.json");
    std::fs::write(&json_path, report.to_json()).expect("write profile json");
    let trace_path = format!("PROFILE_{fig}_trace.json");
    std::fs::write(&trace_path, report.to_chrome_trace()).expect("write chrome trace");
    eprintln!("[profile] wrote {json_path} and {trace_path}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs_flag: Option<usize> = None;
    // Accept `--jobs N` and `--jobs=N` anywhere on the command line.
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--jobs" {
            let Some(v) = args.get(i + 1) else { usage() };
            jobs_flag = Some(v.parse().unwrap_or_else(|_| usage()));
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            jobs_flag = Some(v.parse().unwrap_or_else(|_| usage()));
            args.remove(i);
        } else {
            i += 1;
        }
    }
    if let Some(n) = jobs_flag {
        if n == 0 {
            usage();
        }
        exp::pool::set_jobs(n);
    }
    let Some(which) = args.first() else { usage() };
    let which = which.clone();
    if which == "profile" {
        let Some(fig) = args.get(1) else { usage() };
        // Like `bench`, profiling defaults to a small scale: the span
        // buffers make full-scale runs memory-heavy.
        let scale: f64 = args
            .get(2)
            .map_or(0.05, |s| s.parse().unwrap_or_else(|_| usage()));
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let t0 = std::time::Instant::now();
        profile(fig, scale);
        eprintln!("[harness] completed in {:.1?}", t0.elapsed());
        return;
    }
    let scale_arg: Option<f64> = args.get(1).map(|s| s.parse().unwrap_or_else(|_| usage()));
    let scale = scale_arg.unwrap_or(1.0);
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");

    let t0 = std::time::Instant::now();
    match which.as_str() {
        "fig3" => println!("{}", exp::fig3(scale)),
        "fig8-10" | "fig8" | "fig9" | "fig10" => {
            let (a, b, c) = exp::fig8_9_10(scale);
            println!("{a}{b}{c}");
        }
        "fig11" => {
            let (a, b, c, d) = exp::fig11(scale);
            println!("{a}{b}{c}{d}");
        }
        "fig12-14" | "fig12" | "fig13" | "fig14" => {
            let (a, b, c) = exp::fig12_13_14(scale);
            println!("{a}{b}{c}");
        }
        "fig15" => println!("{}", exp::fig15(scale)),
        "table1" => println!("{}", exp::table1()),
        "params" => params(),
        "list" => list(),
        // The engine comparison runs fig8-10 twice; default to a small
        // scale so a bare `harness bench` finishes in minutes.
        "bench" => bench(scale_arg.unwrap_or(0.05), jobs_flag),
        "ablation-ott" => println!("{}", exp::ablation_ott(scale)),
        "ablation-osiris" => println!("{}", exp::ablation_osiris(scale)),
        "ablation-direct" => println!("{}", exp::ablation_direct(scale)),
        "ablation-partition" => println!("{}", exp::ablation_partition(scale)),
        "all" => {
            params();
            list();
            println!("{}", exp::table1());
            println!("{}", exp::fig3(scale));
            let (a, b, c) = exp::fig8_9_10(scale);
            println!("{a}{b}{c}");
            let (a, b, c, d) = exp::fig11(scale);
            println!("{a}{b}{c}{d}");
            let (a, b, c) = exp::fig12_13_14(scale);
            println!("{a}{b}{c}");
            println!("{}", exp::fig15(scale));
            println!("{}", exp::ablation_ott(scale));
            println!("{}", exp::ablation_osiris(scale));
            println!("{}", exp::ablation_direct(scale));
            println!("{}", exp::ablation_partition(scale));
        }
        _ => usage(),
    }
    eprintln!("[harness] completed in {:.1?}", t0.elapsed());
}
