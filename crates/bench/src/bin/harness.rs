//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! harness [--jobs N] [--no-cache] <experiment> [scale]
//!
//! experiments:
//!   fig3        software-encryption overhead (Whisper)
//!   fig8-10     PMEMKV slowdown / writes / reads
//!   fig11       Whisper slowdown / writes / reads + reduction
//!   fig12-14    DAX micro-benchmarks
//!   fig15       metadata-cache sensitivity
//!   table1      vulnerability matrix
//!   params      Table III simulation parameters
//!   list        Table II workload descriptions
//!   bench       engine + crypto self-benchmarks -> BENCH_harness.json
//!   bench-check schema-check an existing BENCH_harness.json
//!   profile <fig> [scale]
//!               cycle-attribution profile of a figure's cells
//!               -> stdout + PROFILE_<fig>.json + PROFILE_<fig>_trace.json
//!   ablation-ott / ablation-osiris / ablation-direct / ablation-partition
//!   all         everything above except bench (slow)
//!   snapshot <save|load|info> [PATH]
//!               save/restore/inspect an fsencr-snap/1 machine image
//! ```
//!
//! `scale` in (0, 1] shrinks operation counts; default 1.0. Run with
//! `--release`.
//!
//! `--jobs N` (or the `FSENCR_JOBS` environment variable) sets how many
//! experiment cells run concurrently; the default is the host's available
//! parallelism. The figures are identical at any worker count — only the
//! wall-clock changes.
//!
//! Figure subcommands memoize finished cells in `CACHE_cells.json`,
//! keyed by a content hash of the full cell specification (config +
//! workload parameters + crate version), so re-running an unchanged
//! figure skips its simulations and prints byte-identical output. They
//! also keep post-setup machine snapshots in `CACHE_snapshots/`, keyed
//! by the setup-only parameter subset, so cells that miss the cell
//! cache still warm-start past their setup phase. `--no-cache` disables
//! both; deleting the files invalidates them.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use fsencr_bench as exp;
use fsencr_bench::jsonio::Json;
use fsencr::controller::{CtrlMode, MemoryController};
use fsencr::machine::{Machine, MachineOpts, SecurityMode};
use fsencr_bench::report::{
    AesThroughput, BatchThroughput, BenchReport, DigestThroughput, MerkleThroughput,
    MetaThroughput, PadThroughput, SnapshotThroughput,
};
use fsencr_crypto::{
    ctr_pads_n, digest8_line, digest8_lines4, line_pad, line_pad_with, sha256, sha256_line,
    Aes128, Key128, PadDomain, PadInput,
};
use fsencr_nvm::{LineAddr, NvmDevice, PageId, PhysAddr};
use fsencr_secmem::{MetadataLayout, MetadataSystem};
use fsencr_sim::config::{CacheConfig, NvmConfig, SecurityConfig};
use fsencr_sim::{Cycle, MachineConfig};

fn usage() -> ! {
    eprintln!(
        "usage: harness [--jobs N] [--no-cache] <fig3|fig8-10|fig11|fig12-14|fig15|table1|params|list|bench|bench-check|ablation-ott|ablation-osiris|ablation-direct|ablation-partition|all> [scale]\n       harness [--jobs N] profile <fig3|fig8-10|fig11|fig12-14> [scale]\n       harness [--jobs N] faults [--seed N] [--campaign SPEC] [--out PATH]\n       harness snapshot <save|load|info> [PATH] [--seed N] [--pages N] [--mode M]\n\nFigure subcommands reuse cached cell results from CACHE_cells.json and\npost-setup machine snapshots from CACHE_snapshots/ (both\ncontent-addressed; output is byte-identical either way). `--no-cache`\ndisables both; deleting the files invalidates them.\n\n`faults` runs a deterministic fault-injection campaign and writes\nFAULTS_report.json (byte-identical at any --jobs count). SPEC is a\ncomma list like `scenarios=8,ops=64,bitrot=2,torn=1,cuts=1,stuck=1`;\nomitted knobs keep their defaults (`default` for all defaults).\n\n`snapshot save` simulates the reference setup and writes its\nfsencr-snap/1 image (default MACHINE.snap); `load` restores it; `info`\nlists its digest-chained sections without restoring."
    );
    std::process::exit(2);
}

fn params() {
    let cfg = MachineConfig::paper_defaults();
    println!("\n=== Table III: simulation parameters ===");
    println!("CPU: {} cores @ {} MHz, out-of-order x86-64 (modelled request-level)", cfg.cpu.cores, cfg.cpu.freq_mhz);
    for (name, c) in [("L1", cfg.cpu.l1), ("L2", cfg.cpu.l2), ("L3", cfg.cpu.l3)] {
        println!(
            "{name}: {} KiB, {}-way, {}B lines, {} cycles",
            c.size_bytes / 1024,
            c.ways,
            c.block_bytes,
            c.latency_cycles
        );
    }
    let n = cfg.nvm;
    println!(
        "NVM: {} GiB PCM, {} ranks/ch x {} banks, {} B row buffer, read {} ns / write {} ns",
        n.capacity_bytes >> 30,
        n.ranks_per_channel,
        n.banks_per_rank,
        n.row_buffer_bytes,
        n.read_ns,
        n.write_ns
    );
    println!(
        "timing: tRCD {} ns, tCL {} ns, tBURST {} ns, tWR {} ns",
        n.t_rcd_ns, n.t_cl_ns, n.t_burst_ns, n.t_wr_ns
    );
    let s = cfg.security;
    println!(
        "security: AES {} ns, metadata cache {} KiB {}-way, Merkle {}-ary (<= {} levels), OTT {} entries @ {} cycles, Osiris stop-loss {}",
        s.aes_ns,
        s.metadata_cache.size_bytes / 1024,
        s.metadata_cache.ways,
        s.merkle_arity,
        s.merkle_levels,
        s.ott_entries(),
        s.ott_latency_cycles,
        s.osiris_stop_loss
    );
}

fn list() {
    println!("\n=== Table II: benchmark descriptions ===");
    let rows = [
        ("DAX-1", "reads 1 byte after each 16 bytes of a persistent DAX file"),
        ("DAX-2", "reads 1 byte after each 128 bytes of a persistent DAX file"),
        ("DAX-3", "initialises two 16 B arrays at two locations and swaps them"),
        ("DAX-4", "initialises two 128 B arrays at two locations and swaps them"),
        ("Fillseq-S/L", "btree loads values (64 B / 4 KiB) in sequential key order"),
        ("Fillrandom-S/L", "btree loads values in random key order"),
        ("Overwrite-S/L", "btree replaces values in random key order"),
        ("Readrandom-S/L", "btree reads values in random key order"),
        ("Readseq-S/L", "btree reads values via an in-order leaf scan"),
        ("YCSB", "zipfian 50/50 read/update over a persistent hashmap, 2 workers"),
        ("Hashmap", "insert/lookup mix, 128 B records, 2 threads"),
        ("CTree", "insert/lookup mix on a persistent binary tree, 128 B, 2 threads"),
    ];
    for (name, desc) in rows {
        println!("{name:16} {desc}");
    }
}

/// Measures raw single-thread AES block throughput: the T-table hot path
/// against the byte-wise reference it replaced.
fn aes_throughput() -> AesThroughput {
    let aes = Aes128::new(&Key128::from_seed(0x5eed));
    let blocks_per_sec = |f: &dyn Fn([u8; 16]) -> [u8; 16]| {
        let mut block = [0x3cu8; 16];
        // Warm up tables and caches.
        for _ in 0..1_000 {
            block = f(block);
        }
        let mut blocks = 0u64;
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(200) {
            for _ in 0..4_096 {
                block = f(block);
            }
            blocks += 4_096;
        }
        // Feed the chained block back in so the loop cannot be elided.
        std::hint::black_box(block);
        blocks as f64 / start.elapsed().as_secs_f64()
    };
    AesThroughput {
        ttable_blocks_per_sec: blocks_per_sec(&|b| aes.encrypt_block(b)),
        reference_blocks_per_sec: blocks_per_sec(&|b| aes.encrypt_block_ref(b)),
    }
}

/// Best rate over several short measurement windows: scheduler noise and
/// frequency ramps only ever make a window slower, so the max is the
/// most faithful estimate of the code's actual throughput.
fn best_of_windows(mut window: impl FnMut(Duration) -> f64) -> f64 {
    (0..5).map(|_| window(Duration::from_millis(60))).fold(0.0, f64::max)
}

/// Measures 64-byte line hashing: the two-block `sha256_line` fast path
/// against the streaming hasher it bypasses.
fn digest_throughput() -> DigestThroughput {
    let hashes_per_sec = |f: &dyn Fn(&[u8; 64]) -> [u8; 32]| {
        let mut line = [0x5au8; 64];
        for _ in 0..1_000 {
            let d = f(&line);
            line[..32].copy_from_slice(&d);
        }
        let rate = best_of_windows(|budget| {
            let mut hashes = 0u64;
            let start = Instant::now();
            while start.elapsed() < budget {
                for _ in 0..1_024 {
                    // Chain the digest back into the line so the loop
                    // cannot be elided.
                    let d = f(&line);
                    line[..32].copy_from_slice(&d);
                }
                hashes += 1_024;
            }
            hashes as f64 / start.elapsed().as_secs_f64()
        });
        std::hint::black_box(line);
        rate
    };
    DigestThroughput {
        line_hashes_per_sec: hashes_per_sec(&|l| sha256_line(l)),
        streaming_hashes_per_sec: hashes_per_sec(&|l| sha256(l)),
    }
}

/// Measures CTR pad generation: a reused expanded key schedule (what the
/// `ScheduleCache` serves on every hit) against per-pad key expansion.
fn pad_throughput() -> PadThroughput {
    let key = Key128::from_seed(0x9ad5);
    let aes = Aes128::new(&key);
    let mut input = PadInput {
        page_id: 0x1234,
        block_in_page: 3,
        major: 7,
        minor: 0,
        domain: PadDomain::File,
    };
    let mut pads_per_sec = |f: &mut dyn FnMut(&PadInput) -> [u8; 64]| {
        let mut acc = 0u8;
        for _ in 0..256 {
            input.minor = input.minor.wrapping_add(1) & 0x7f;
            acc ^= f(&input)[0];
        }
        let rate = best_of_windows(|budget| {
            let mut pads = 0u64;
            let start = Instant::now();
            while start.elapsed() < budget {
                for _ in 0..256 {
                    input.minor = input.minor.wrapping_add(1) & 0x7f;
                    acc ^= f(&input)[0];
                }
                pads += 256;
            }
            pads as f64 / start.elapsed().as_secs_f64()
        });
        std::hint::black_box(acc);
        rate
    };
    PadThroughput {
        cached_pads_per_sec: pads_per_sec(&mut |i| line_pad_with(&aes, i)),
        uncached_pads_per_sec: pads_per_sec(&mut |i| line_pad(&key, i)),
    }
}

/// Measures the metadata persist path end to end: repeated
/// `persist_block` calls on unchanged lines, where the digest memo turns
/// each parent bump's line hash into a map probe, against the same
/// sequence with the memo disabled (every bump re-hashes the line).
/// This is the line-digest fast path as the integrity pipeline actually
/// exercises it.
fn meta_throughput() -> MetaThroughput {
    const LINES: u64 = 32;
    let build = |memo: bool| -> (MetadataSystem, NvmDevice, Cycle) {
        let layout = MetadataLayout::new(64 * 4096, 4096);
        let mut cfg = SecurityConfig::default();
        cfg.metadata_cache = CacheConfig {
            size_bytes: 64 * 64, // 64 lines
            ways: 8,
            block_bytes: 64,
            latency_cycles: 3,
        };
        let mut sys = MetadataSystem::new(layout, &cfg);
        sys.set_digest_memo_enabled(memo);
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let mut t = Cycle::ZERO;
        for p in 0..LINES {
            let addr = sys.layout().mecb_addr(PageId::new(p));
            t = sys
                .write_block(&mut nvm, t, addr, [p as u8; 64])
                .expect("fresh tree verifies")
                .done;
        }
        t = sys.flush(&mut nvm, t);
        (sys, nvm, t)
    };
    let digests_per_sec = |memo: bool| {
        let (mut sys, mut nvm, _) = build(memo);
        let lines: Vec<_> = (0..LINES)
            .map(|p| {
                let addr = sys.layout().mecb_addr(PageId::new(p));
                let (bytes, _) = sys
                    .read_block(&mut nvm, Cycle::ZERO, addr)
                    .expect("cached line reads back");
                (addr, bytes)
            })
            .collect();
        let mut acc = 0u8;
        for (addr, bytes) in &lines {
            acc ^= sys.trusted_line_digest(*addr, bytes)[0];
        }
        let rate = best_of_windows(|budget| {
            let mut digests = 0u64;
            let start = Instant::now();
            while start.elapsed() < budget {
                for (addr, bytes) in &lines {
                    acc ^= sys.trusted_line_digest(*addr, bytes)[0];
                }
                digests += LINES;
            }
            digests as f64 / start.elapsed().as_secs_f64()
        });
        std::hint::black_box(acc);
        rate
    };
    let persists_per_sec = |memo: bool| {
        let (mut sys, mut nvm, mut t) = build(memo);
        let addrs: Vec<_> =
            (0..LINES).map(|p| sys.layout().mecb_addr(PageId::new(p))).collect();
        for &addr in &addrs {
            t = sys.persist_block(&mut nvm, t, addr).expect("persist verified line");
        }
        best_of_windows(|budget| {
            let mut persists = 0u64;
            let start = Instant::now();
            while start.elapsed() < budget {
                for &addr in &addrs {
                    t = sys.persist_block(&mut nvm, t, addr).expect("persist verified line");
                }
                persists += LINES;
            }
            persists as f64 / start.elapsed().as_secs_f64()
        })
    };
    MetaThroughput {
        memo_digests_per_sec: digests_per_sec(true),
        rehash_digests_per_sec: digests_per_sec(false),
        memo_persists_per_sec: persists_per_sec(true),
        rehash_persists_per_sec: persists_per_sec(false),
    }
}

/// Measures the two host-side wins of the page-batched datapath. The pad
/// pair runs `ctr_pads_n` four lanes at a time against one pad per call
/// over the same cached schedule. The read pair runs a 64-line
/// `read_lines` region read of a primed file page against the equivalent
/// per-line `read_line` loop — identical simulated cycles either way, so
/// the delta is purely the amortized counter-block parses and
/// schedule-cache probes.
fn batch_throughput() -> BatchThroughput {
    let aes = Aes128::new(&Key128::from_seed(0xba7c));
    let mut input = PadInput {
        page_id: 0x88,
        block_in_page: 5,
        major: 3,
        minor: 0,
        domain: PadDomain::File,
    };
    let mut pads_per_sec = |lanes: usize| {
        let mut pad = [0u8; 64];
        let mut acc = 0u8;
        for _ in 0..256 {
            input.minor = input.minor.wrapping_add(1) & 0x7f;
            ctr_pads_n(&aes, &input, lanes, &mut pad);
            acc ^= pad[0];
        }
        let rate = best_of_windows(|budget| {
            let mut pads = 0u64;
            let start = Instant::now();
            while start.elapsed() < budget {
                for _ in 0..256 {
                    input.minor = input.minor.wrapping_add(1) & 0x7f;
                    ctr_pads_n(&aes, &input, lanes, &mut pad);
                    acc ^= pad[0];
                }
                pads += 256;
            }
            pads as f64 / start.elapsed().as_secs_f64()
        });
        std::hint::black_box(acc);
        rate
    };
    let quad_pads_per_sec = pads_per_sec(4);
    let single_pads_per_sec = pads_per_sec(1);

    // A controller with one primed DF page: key installed, FECB stamped,
    // every line written once, metadata cache warm.
    let build = || -> (MemoryController, Vec<PhysAddr>, Cycle) {
        let layout = MetadataLayout::new(64 * 4096, 8192);
        let cfg = SecurityConfig::default();
        let mut ctrl = MemoryController::new(
            CtrlMode::Encrypted,
            layout,
            &cfg,
            Key128::from_seed(1),
            Key128::from_seed(2),
            NvmDevice::new(NvmConfig::default()),
        );
        let mut t = ctrl
            .install_key(Cycle::ZERO, 1, 7, Key128::from_seed(0xfee))
            .expect("fresh OTT accepts a key");
        let page = PageId::new(2);
        t = ctrl.stamp_file_page(t, page, 1, 7).expect("fresh tree verifies");
        let addrs: Vec<PhysAddr> = page.lines().map(|l| PhysAddr::new(l.get())).collect();
        for (i, &addr) in addrs.iter().enumerate() {
            t = ctrl
                .write_line(t, addr, &[i as u8; 64])
                .expect("primed page writes cleanly");
        }
        (ctrl, addrs, t)
    };
    let looped_reads_per_sec = {
        let (mut ctrl, addrs, mut t) = build();
        best_of_windows(|budget| {
            let mut lines = 0u64;
            let start = Instant::now();
            while start.elapsed() < budget {
                let mut acc = 0u8;
                for &addr in &addrs {
                    let (plain, done) =
                        ctrl.read_line(t, addr).expect("primed page reads back");
                    acc ^= plain[0];
                    t = done;
                }
                std::hint::black_box(acc);
                lines += addrs.len() as u64;
            }
            lines as f64 / start.elapsed().as_secs_f64()
        })
    };
    let batched_reads_per_sec = {
        let (mut ctrl, addrs, mut t) = build();
        let mut out: Vec<[u8; 64]> = Vec::with_capacity(addrs.len());
        best_of_windows(|budget| {
            let mut lines = 0u64;
            let start = Instant::now();
            while start.elapsed() < budget {
                out.clear();
                t = ctrl
                    .read_lines(t, &addrs, &mut out)
                    .expect("primed page reads back");
                std::hint::black_box(out[0][0]);
                lines += addrs.len() as u64;
            }
            lines as f64 / start.elapsed().as_secs_f64()
        })
    };
    BatchThroughput {
        quad_pads_per_sec,
        single_pads_per_sec,
        batched_reads_per_sec,
        looped_reads_per_sec,
    }
}

/// Measures the batched Merkle engine. The lane pair chains
/// `digest8_lines4` against the same four digests via one-shot
/// `digest8_line` calls. The verify pair replays a 64-line region from
/// cold post-crash state — `verify_lines` (one shared-ancestor plan,
/// four-lane hashing) against the equivalent chained `read_block` loop —
/// timing only the verify itself, not the crash that re-colds the
/// caches. The persist pair dirties the same 64 leaves with fresh
/// content each round and times `persist_blocks` against the per-line
/// `persist_block` loop, excluding the (identical) dirtying writes.
fn merkle_throughput() -> MerkleThroughput {
    let mut lines = [[0u8; 64]; 4];
    for (i, line) in lines.iter_mut().enumerate() {
        for (j, byte) in line.iter_mut().enumerate() {
            *byte = (i as u8).wrapping_mul(67).wrapping_add((j as u8).wrapping_mul(13)).wrapping_add(5);
        }
    }
    let lane_digests_per_sec = {
        let mut lines = lines;
        let rate = best_of_windows(|budget| {
            let mut digests = 0u64;
            let start = Instant::now();
            while start.elapsed() < budget {
                for _ in 0..256 {
                    let [l0, l1, l2, l3] = &lines;
                    let d = digest8_lines4([l0, l1, l2, l3]);
                    // Chain the digests back in so the loop cannot be
                    // elided.
                    for (l, digest) in d.iter().enumerate() {
                        lines[l][..8].copy_from_slice(digest);
                    }
                }
                digests += 4 * 256;
            }
            digests as f64 / start.elapsed().as_secs_f64()
        });
        std::hint::black_box(lines);
        rate
    };
    let oneshot_digests_per_sec = {
        let mut lines = lines;
        let rate = best_of_windows(|budget| {
            let mut digests = 0u64;
            let start = Instant::now();
            while start.elapsed() < budget {
                for _ in 0..256 {
                    for line in &mut lines {
                        let d = digest8_line(line);
                        line[..8].copy_from_slice(&d);
                    }
                }
                digests += 4 * 256;
            }
            digests as f64 / start.elapsed().as_secs_f64()
        });
        std::hint::black_box(lines);
        rate
    };

    const REGION: u64 = 64;
    // A populated tree: 64 persisted MECB leaves behind a deliberately
    // small metadata cache, so cold per-line climbs re-hash shared
    // ancestors — the redundancy the batch planner removes.
    let build = |cache_lines: usize| -> (MetadataSystem, NvmDevice, Vec<LineAddr>, Cycle) {
        let layout = MetadataLayout::new(REGION * 4096, 4096);
        let mut cfg = SecurityConfig::default();
        cfg.metadata_cache = CacheConfig {
            size_bytes: cache_lines * 64,
            ways: 8,
            block_bytes: 64,
            latency_cycles: 3,
        };
        let mut sys = MetadataSystem::new(layout, &cfg);
        let mut nvm = NvmDevice::new(NvmConfig::default());
        let mut t = Cycle::ZERO;
        let addrs: Vec<LineAddr> =
            (0..REGION).map(|p| sys.layout().mecb_addr(PageId::new(p))).collect();
        for (i, &addr) in addrs.iter().enumerate() {
            t = sys
                .write_block(&mut nvm, t, addr, [i as u8 + 1; 64])
                .expect("fresh tree verifies")
                .done;
        }
        t = sys.flush(&mut nvm, t);
        (sys, nvm, addrs, t)
    };
    let verifies_per_sec = |batched: bool| {
        let (mut sys, mut nvm, addrs, _) = build(8);
        best_of_windows(|budget| {
            let mut lines = 0u64;
            let mut spent = Duration::ZERO;
            let start = Instant::now();
            while start.elapsed() < budget {
                sys.crash();
                let timed = Instant::now();
                if batched {
                    sys.verify_lines(&mut nvm, Cycle::ZERO, &addrs).expect("tree verifies");
                } else {
                    let mut t = Cycle::ZERO;
                    for &addr in &addrs {
                        t = sys.read_block(&mut nvm, t, addr).expect("tree verifies").1.done;
                    }
                }
                spent += timed.elapsed();
                lines += REGION;
            }
            lines as f64 / spent.as_secs_f64()
        })
    };
    let persists_per_sec = |batched: bool| {
        let (mut sys, mut nvm, addrs, mut t) = build(256);
        let mut v = 0u8;
        best_of_windows(|budget| {
            let mut lines = 0u64;
            let mut spent = Duration::ZERO;
            let start = Instant::now();
            while start.elapsed() < budget {
                v = v.wrapping_add(1);
                for (i, &addr) in addrs.iter().enumerate() {
                    let bytes = [v ^ (i as u8).wrapping_mul(3); 64];
                    t = sys
                        .write_block(&mut nvm, t, addr, bytes)
                        .expect("cached line writes cleanly")
                        .done;
                }
                let timed = Instant::now();
                if batched {
                    t = sys.persist_blocks(&mut nvm, t, &addrs).expect("persist verified lines");
                } else {
                    for &addr in &addrs {
                        t = sys.persist_block(&mut nvm, t, addr).expect("persist verified line");
                    }
                }
                spent += timed.elapsed();
                lines += REGION;
            }
            lines as f64 / spent.as_secs_f64()
        })
    };
    MerkleThroughput {
        lane_digests_per_sec,
        oneshot_digests_per_sec,
        batched_verifies_per_sec: verifies_per_sec(true),
        looped_verifies_per_sec: verifies_per_sec(false),
        batched_persists_per_sec: persists_per_sec(true),
        looped_persists_per_sec: persists_per_sec(false),
    }
}

/// Measures the warm-start win: simulating a representative setup phase
/// (a fully initialised and persisted 512 KiB encrypted file) against
/// restoring the identical machine from its `fsencr-snap/1` image. Both
/// sides take the best of several attempts; the restored machine is
/// bit-identical (round-trip theorem), so the gap is pure saved
/// simulation.
fn snapshot_throughput() -> SnapshotThroughput {
    let stream = exp::epochs::EpochStream { seed: 0x57AB, file_pages: 128, ops: 0 };
    let opts = MachineOpts::small_test();
    let mode = SecurityMode::FsEncr;
    let mut cold = Duration::MAX;
    let mut bytes = Vec::new();
    for _ in 0..3 {
        let t = Instant::now();
        let (m, _) = stream.build(opts, mode).expect("snapshot bench setup");
        cold = cold.min(t.elapsed());
        bytes = m.save_snapshot().expect("no injector armed during setup");
    }
    let mut restore = Duration::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let m = Machine::restore_snapshot(opts, mode, &bytes).expect("snapshot restores");
        restore = restore.min(t.elapsed());
        std::hint::black_box(m.elapsed());
    }
    SnapshotThroughput {
        cold_setup_wall: cold,
        restore_wall: restore,
        snapshot_bytes: bytes.len() as u64,
    }
}

/// Times one full `fig8_9_10` pass at `scale` with a fixed worker count.
fn timed_fig8(jobs: usize, scale: f64) -> Duration {
    exp::pool::set_jobs(jobs);
    let start = Instant::now();
    let (a, b, c) = exp::fig8_9_10(scale);
    std::hint::black_box((a, b, c));
    start.elapsed()
}

/// `harness bench`: emits `BENCH_harness.json` with the AES fast-path
/// speedup and the serial-vs-parallel experiment-engine comparison.
fn bench(scale: f64, jobs_flag: Option<usize>) {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs = jobs_flag.unwrap_or_else(exp::pool::jobs);
    eprintln!("[bench] AES throughput (single thread)...");
    let aes = aes_throughput();
    eprintln!(
        "[bench]   ttable {:.0} blk/s, reference {:.0} blk/s, speedup {:.2}x",
        aes.ttable_blocks_per_sec,
        aes.reference_blocks_per_sec,
        aes.speedup()
    );
    eprintln!("[bench] line-digest throughput (single thread)...");
    let digest = digest_throughput();
    eprintln!(
        "[bench]   sha256_line {:.0} h/s, streaming {:.0} h/s, speedup {:.2}x",
        digest.line_hashes_per_sec,
        digest.streaming_hashes_per_sec,
        digest.speedup()
    );
    eprintln!("[bench] CTR pad throughput (single thread)...");
    let pad = pad_throughput();
    eprintln!(
        "[bench]   cached schedule {:.0} pad/s, fresh expansion {:.0} pad/s, speedup {:.2}x",
        pad.cached_pads_per_sec,
        pad.uncached_pads_per_sec,
        pad.speedup()
    );
    eprintln!("[bench] metadata digest-memo throughput (single thread)...");
    let meta = meta_throughput();
    eprintln!(
        "[bench]   digest path: memo {:.0} /s, re-hash {:.0} /s, speedup {:.2}x",
        meta.memo_digests_per_sec,
        meta.rehash_digests_per_sec,
        meta.speedup()
    );
    eprintln!(
        "[bench]   persist path: memo {:.0} /s, re-hash {:.0} /s, speedup {:.2}x",
        meta.memo_persists_per_sec,
        meta.rehash_persists_per_sec,
        meta.persist_speedup()
    );
    eprintln!("[bench] batched-datapath throughput (single thread)...");
    let batch = batch_throughput();
    eprintln!(
        "[bench]   pad kernel: 4-lane {:.0} pad/s, 1-lane {:.0} pad/s, speedup {:.2}x",
        batch.quad_pads_per_sec,
        batch.single_pads_per_sec,
        batch.pad_speedup()
    );
    eprintln!(
        "[bench]   region read: batched {:.0} ln/s, looped {:.0} ln/s, speedup {:.2}x",
        batch.batched_reads_per_sec,
        batch.looped_reads_per_sec,
        batch.read_speedup()
    );
    eprintln!("[bench] batched Merkle-engine throughput (single thread)...");
    let merkle = merkle_throughput();
    eprintln!(
        "[bench]   digest kernel: 4-lane {:.0} /s, one-shot {:.0} /s, speedup {:.2}x",
        merkle.lane_digests_per_sec,
        merkle.oneshot_digests_per_sec,
        merkle.lanes_speedup()
    );
    eprintln!(
        "[bench]   region verify: batched {:.0} ln/s, looped {:.0} ln/s, speedup {:.2}x",
        merkle.batched_verifies_per_sec,
        merkle.looped_verifies_per_sec,
        merkle.verify_speedup()
    );
    eprintln!(
        "[bench]   region persist: batched {:.0} ln/s, looped {:.0} ln/s, speedup {:.2}x",
        merkle.batched_persists_per_sec,
        merkle.looped_persists_per_sec,
        merkle.persist_speedup()
    );
    eprintln!("[bench] snapshot restore vs cold setup...");
    let snap = snapshot_throughput();
    eprintln!(
        "[bench]   cold setup {:.2?}, restore {:.2?}, speedup {:.2}x ({} snapshot bytes)",
        snap.cold_setup_wall,
        snap.restore_wall,
        snap.speedup(),
        snap.snapshot_bytes
    );
    eprintln!("[bench] engine serial run (jobs=1, scale {scale})...");
    exp::report::take_cell_records();
    let serial_wall = timed_fig8(1, scale);
    exp::report::take_cell_records();
    eprintln!("[bench] engine parallel run (jobs={jobs})...");
    let parallel_wall = timed_fig8(jobs, scale);
    let mut cells = exp::report::take_cell_records();
    cells.sort_by(|a, b| (&a.workload, &a.mode).cmp(&(&b.workload, &b.mode)));
    exp::pool::set_jobs(0);
    let report = BenchReport {
        jobs,
        host_parallelism: host,
        scale,
        aes,
        digest,
        pad,
        meta,
        batch,
        merkle,
        snap,
        serial_wall,
        parallel_wall,
        cells,
    };
    eprintln!(
        "[bench]   serial {:.2?}, parallel {:.2?}, speedup {:.2}x",
        serial_wall,
        parallel_wall,
        report.engine_speedup()
    );
    let path = "BENCH_harness.json";
    std::fs::write(path, report.to_json()).expect("write BENCH_harness.json");
    eprintln!("[bench] wrote {path}");
}

/// `harness bench-check`: validates the schema and required sections of
/// an existing `BENCH_harness.json` (used by `scripts/verify.sh`). Exits
/// non-zero with a diagnostic on any mismatch.
fn bench_check(path: &str) {
    let fail = |msg: &str| -> ! {
        eprintln!("[bench-check] {path}: {msg}");
        std::process::exit(1);
    };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("unreadable: {e}")));
    let json = Json::parse(&text).unwrap_or_else(|e| fail(&format!("invalid JSON: {e}")));
    match json.get("schema").and_then(Json::as_str) {
        Some("fsencr-bench-harness/5") => {}
        other => fail(&format!("schema mismatch: {other:?}")),
    }
    for key in ["host_parallelism", "jobs", "scale"] {
        if json.get(key).and_then(Json::as_f64).is_none() {
            fail(&format!("missing numeric field {key:?}"));
        }
    }
    let sections: &[(&str, &[&str])] = &[
        ("aes", &["ttable_blocks_per_sec", "reference_blocks_per_sec", "speedup"]),
        ("digest", &["line_hashes_per_sec", "streaming_hashes_per_sec", "speedup"]),
        ("pad", &["cached_pads_per_sec", "uncached_pads_per_sec", "speedup"]),
        (
            "metadata",
            &[
                "memo_digests_per_sec",
                "rehash_digests_per_sec",
                "speedup",
                "memo_persists_per_sec",
                "rehash_persists_per_sec",
                "persist_speedup",
            ],
        ),
        (
            "batch",
            &[
                "quad_pads_per_sec",
                "single_pads_per_sec",
                "pad_speedup",
                "batched_reads_per_sec",
                "looped_reads_per_sec",
                "read_speedup",
            ],
        ),
        (
            "merkle",
            &[
                "lane_digests_per_sec",
                "oneshot_digests_per_sec",
                "lanes_speedup",
                "batched_verifies_per_sec",
                "looped_verifies_per_sec",
                "verify_speedup",
                "batched_persists_per_sec",
                "looped_persists_per_sec",
                "persist_speedup",
            ],
        ),
        (
            "snapshot",
            &["cold_setup_wall_s", "restore_wall_s", "speedup", "snapshot_bytes"],
        ),
        ("engine", &["serial_wall_s", "parallel_wall_s", "speedup"]),
    ];
    for (section, fields) in sections {
        let Some(obj) = json.get(section) else {
            fail(&format!("missing section {section:?}"));
        };
        for f in *fields {
            match obj.get(f).and_then(Json::as_f64) {
                Some(v) if v >= 0.0 => {}
                other => fail(&format!("{section}.{f}: bad value {other:?}")),
            }
        }
    }
    let Some(cells) = json.get("engine").and_then(|e| e.get("cells")).and_then(Json::as_arr)
    else {
        fail("engine.cells missing or not an array");
    };
    if cells.is_empty() {
        fail("engine.cells is empty");
    }
    for cell in cells {
        for f in ["workload", "mode"] {
            if cell.get(f).and_then(Json::as_str).is_none() {
                fail(&format!("cell missing string field {f:?}"));
            }
        }
        for f in ["wall_s", "sim_cycles", "nvm_lines", "sim_lines_per_sec"] {
            if cell.get(f).and_then(Json::as_f64).is_none() {
                fail(&format!("cell missing numeric field {f:?}"));
            }
        }
    }
    println!("[bench-check] {path}: OK ({} cells)", cells.len());
}

/// `harness faults`: runs a deterministic fault-injection campaign and
/// writes `FAULTS_report.json`. Exits non-zero if any in-coverage
/// corruption went undetected — the report is a pass/fail artifact, not
/// just telemetry.
fn faults(args: &[String]) {
    let mut seed: u64 = 42;
    let mut spec_str = String::from("default");
    let mut out_path = String::from("FAULTS_report.json");
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut take = |key: &str| -> Option<String> {
            if arg == key {
                let v = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
                Some(v)
            } else if let Some(v) = arg.strip_prefix(&format!("{key}=")) {
                i += 1;
                Some(v.to_string())
            } else {
                None
            }
        };
        if let Some(v) = take("--seed") {
            seed = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = take("--campaign") {
            spec_str = v;
        } else if let Some(v) = take("--out") {
            out_path = v;
        } else {
            usage();
        }
    }
    let spec: fsencr_faults::CampaignSpec = spec_str.parse().unwrap_or_else(|e| {
        eprintln!("[faults] bad --campaign spec: {e}");
        std::process::exit(2);
    });
    eprintln!("[faults] seed {seed}, campaign {spec}");
    let report = exp::faultcamp::run_campaign(seed, &spec);
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("[faults] {}", report.summary());
    eprintln!("[faults] wrote {out_path}");
    if report.undetected_in_coverage() > 0 {
        eprintln!(
            "[faults] FAIL: {} in-coverage corruption(s) went undetected",
            report.undetected_in_coverage()
        );
        std::process::exit(1);
    }
}

/// Parses a `--mode` operand; accepts the `Display` names plus common
/// shorthands.
fn parse_mode(s: &str) -> SecurityMode {
    match s {
        "ext4-dax" | "unencrypted" => SecurityMode::Unencrypted,
        "baseline-security" | "memory-only" => SecurityMode::MemoryOnly,
        "fsencr" => SecurityMode::FsEncr,
        "software-encryption" | "software" => SecurityMode::Software,
        _ => usage(),
    }
}

/// `harness snapshot <save|load|info> [PATH]`: the snapshot subsystem's
/// CLI. `save` simulates the reference setup (a fully initialised,
/// persisted encrypted file) and writes its post-setup `fsencr-snap/1`
/// image; `load` restores the image and reports the machine it rebuilt;
/// `info` walks the stream's digest-chained sections without restoring
/// anything.
fn snapshot_cmd(args: &[String]) {
    let Some(verb) = args.first() else { usage() };
    let verb = verb.as_str();
    let path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .map_or("MACHINE.snap", String::as_str);
    let flags = if args.get(1).is_some_and(|a| !a.starts_with("--")) { &args[2..] } else { &args[1..] };
    let mut seed: u64 = 0x57AB;
    let mut pages: u64 = 128;
    let mut mode = SecurityMode::FsEncr;
    let mut i = 0;
    while i < flags.len() {
        let arg = flags[i].as_str();
        let mut take = |key: &str| -> Option<String> {
            if arg == key {
                let v = flags.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
                Some(v)
            } else if let Some(v) = arg.strip_prefix(&format!("{key}=")) {
                i += 1;
                Some(v.to_string())
            } else {
                None
            }
        };
        if let Some(v) = take("--seed") {
            seed = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = take("--pages") {
            pages = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = take("--mode") {
            mode = parse_mode(&v);
        } else {
            usage();
        }
    }
    let opts = MachineOpts::small_test();
    match verb {
        "save" => {
            let stream = exp::epochs::EpochStream { seed, file_pages: pages, ops: 0 };
            let t0 = Instant::now();
            let (m, _) = stream.build(opts, mode).unwrap_or_else(|e| {
                eprintln!("[snapshot] setup failed: {e}");
                std::process::exit(1);
            });
            let setup = t0.elapsed();
            let bytes = m.save_snapshot().unwrap_or_else(|e| {
                eprintln!("[snapshot] save refused: {e}");
                std::process::exit(1);
            });
            std::fs::write(path, &bytes).unwrap_or_else(|e| {
                eprintln!("[snapshot] write {path}: {e}");
                std::process::exit(1);
            });
            let sections = fsencr_snapshot::describe(&bytes).map_or(0, |s| s.len());
            eprintln!(
                "[snapshot] wrote {path}: {} bytes, {sections} sections (setup {setup:.2?}, \
                 seed {seed}, {pages} pages, mode {mode})",
                bytes.len()
            );
        }
        "load" => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("[snapshot] read {path}: {e}");
                std::process::exit(1);
            });
            let t0 = Instant::now();
            let m = Machine::restore_snapshot(opts, mode, &bytes).unwrap_or_else(|e| {
                eprintln!("[snapshot] {path}: {e}");
                std::process::exit(1);
            });
            println!(
                "[snapshot] {path}: restored in {:.2?} ({} bytes, machine at cycle {}, mode {mode})",
                t0.elapsed(),
                bytes.len(),
                m.elapsed()
            );
        }
        "info" => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("[snapshot] read {path}: {e}");
                std::process::exit(1);
            });
            match fsencr_snapshot::describe(&bytes) {
                Ok(sections) => {
                    println!(
                        "{path}: fsencr-snap/1, {} bytes, {} sections",
                        bytes.len(),
                        sections.len()
                    );
                    for s in &sections {
                        println!("  {:<24} {:>12} B  digest {:016x}", s.name, s.payload_len, s.digest);
                    }
                }
                Err(e) => {
                    eprintln!("[snapshot] {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}

/// `harness profile <fig>`: re-runs the figure's cells with the machine
/// observer enabled and emits the per-cell cycle-attribution breakdown,
/// plus JSON and chrome-trace exports next to the working directory.
fn profile(fig: &str, scale: f64) {
    let Some(report) = exp::profile::profile(fig, scale, exp::profile::DEFAULT_SPAN_CAPACITY)
    else {
        eprintln!("[profile] `{fig}` has no profilable cell matrix (try fig3, fig8-10, fig11, fig12-14)");
        std::process::exit(2);
    };
    print!("{}", report.render_text());
    let json_path = format!("PROFILE_{fig}.json");
    std::fs::write(&json_path, report.to_json()).expect("write profile json");
    let trace_path = format!("PROFILE_{fig}_trace.json");
    std::fs::write(&trace_path, report.to_chrome_trace()).expect("write chrome trace");
    eprintln!("[profile] wrote {json_path} and {trace_path}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs_flag: Option<usize> = None;
    let mut no_cache = false;
    // Accept `--jobs N`, `--jobs=N` and `--no-cache` anywhere on the
    // command line.
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--jobs" {
            let Some(v) = args.get(i + 1) else { usage() };
            jobs_flag = Some(v.parse().unwrap_or_else(|_| usage()));
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            jobs_flag = Some(v.parse().unwrap_or_else(|_| usage()));
            args.remove(i);
        } else if args[i] == "--no-cache" {
            no_cache = true;
            args.remove(i);
        } else {
            i += 1;
        }
    }
    if let Some(n) = jobs_flag {
        if n == 0 {
            usage();
        }
        exp::pool::set_jobs(n);
    }
    let Some(which) = args.first() else { usage() };
    let which = which.clone();
    if which == "profile" {
        let Some(fig) = args.get(1) else { usage() };
        // Like `bench`, profiling defaults to a small scale: the span
        // buffers make full-scale runs memory-heavy.
        let scale: f64 = args
            .get(2)
            .map_or(0.05, |s| s.parse().unwrap_or_else(|_| usage()));
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let t0 = std::time::Instant::now();
        profile(fig, scale);
        eprintln!("[harness] completed in {:.1?}", t0.elapsed());
        return;
    }
    if which == "bench-check" {
        bench_check(args.get(1).map_or("BENCH_harness.json", String::as_str));
        return;
    }
    if which == "faults" {
        let t0 = std::time::Instant::now();
        faults(&args[1..]);
        eprintln!("[harness] completed in {:.1?}", t0.elapsed());
        return;
    }
    if which == "snapshot" {
        snapshot_cmd(&args[1..]);
        return;
    }
    let scale_arg: Option<f64> = args.get(1).map(|s| s.parse().unwrap_or_else(|_| usage()));
    let scale = scale_arg.unwrap_or(1.0);
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");

    // The cell cache serves figure subcommands only. `bench` and
    // `profile` keep it disabled: `bench` times the simulation engine (a
    // warm cache would skip the very work being measured) and `profile`
    // needs the observer to actually run.
    let cacheable = matches!(
        which.as_str(),
        "fig3" | "fig8-10" | "fig8" | "fig9" | "fig10" | "fig11" | "fig12-14" | "fig12"
            | "fig13" | "fig14" | "fig15" | "ablation-ott" | "ablation-osiris"
            | "ablation-direct" | "ablation-partition" | "all"
    );
    let use_cache = cacheable && !no_cache;
    if use_cache {
        exp::cellcache::configure(Some(std::path::PathBuf::from("CACHE_cells.json")));
        exp::snapstore::configure(Some(std::path::PathBuf::from("CACHE_snapshots")));
    }

    let t0 = std::time::Instant::now();
    match which.as_str() {
        "fig3" => println!("{}", exp::fig3(scale)),
        "fig8-10" | "fig8" | "fig9" | "fig10" => {
            let (a, b, c) = exp::fig8_9_10(scale);
            println!("{a}{b}{c}");
        }
        "fig11" => {
            let (a, b, c, d) = exp::fig11(scale);
            println!("{a}{b}{c}{d}");
        }
        "fig12-14" | "fig12" | "fig13" | "fig14" => {
            let (a, b, c) = exp::fig12_13_14(scale);
            println!("{a}{b}{c}");
        }
        "fig15" => println!("{}", exp::fig15(scale)),
        "table1" => println!("{}", exp::table1()),
        "params" => params(),
        "list" => list(),
        // The engine comparison runs fig8-10 twice; default to a small
        // scale so a bare `harness bench` finishes in minutes.
        "bench" => bench(scale_arg.unwrap_or(0.05), jobs_flag),
        "ablation-ott" => println!("{}", exp::ablation_ott(scale)),
        "ablation-osiris" => println!("{}", exp::ablation_osiris(scale)),
        "ablation-direct" => println!("{}", exp::ablation_direct(scale)),
        "ablation-partition" => println!("{}", exp::ablation_partition(scale)),
        "all" => {
            params();
            list();
            println!("{}", exp::table1());
            println!("{}", exp::fig3(scale));
            let (a, b, c) = exp::fig8_9_10(scale);
            println!("{a}{b}{c}");
            let (a, b, c, d) = exp::fig11(scale);
            println!("{a}{b}{c}{d}");
            let (a, b, c) = exp::fig12_13_14(scale);
            println!("{a}{b}{c}");
            println!("{}", exp::fig15(scale));
            println!("{}", exp::ablation_ott(scale));
            println!("{}", exp::ablation_osiris(scale));
            println!("{}", exp::ablation_direct(scale));
            println!("{}", exp::ablation_partition(scale));
        }
        _ => usage(),
    }
    if use_cache {
        let (hits, misses) = exp::cellcache::counters();
        if let Err(e) = exp::cellcache::persist() {
            eprintln!("[cache] warning: {e}");
        }
        eprintln!(
            "[cache] {hits} hits, {misses} misses ({} cells in CACHE_cells.json)",
            exp::cellcache::len()
        );
        exp::cellcache::configure(None);
        let (shits, smisses, sstores) = exp::snapstore::counters();
        eprintln!(
            "[snapstore] {shits} warm starts, {smisses} cold setups, {sstores} snapshots stored"
        );
        exp::snapstore::configure(None);
    }
    eprintln!("[harness] completed in {:.1?}", t0.elapsed());
}
