//! Epoch replay: checkpoint/replay parallelism inside one simulation.
//!
//! A cell is one long, strictly sequential op stream — the natural unit
//! of parallelism in the harness is *between* cells. Epoch replay opens
//! a second axis: a sequential checkpoint pass snapshots the machine at
//! fixed op-stream boundaries (cheap relative to instrumented replay,
//! and reusable across invocations), after which each epoch can be
//! replayed *independently* on the worker pool — every replay restores
//! its epoch's snapshot, runs exactly its op slice, and yields the
//! counter delta for its window. Because the snapshot is full-fidelity
//! (see the `snapshot_roundtrip` suite), epoch `e`'s replay ends in
//! precisely the state epoch `e+1` starts from, so the per-epoch
//! [`StatsSnapshot`] deltas telescope: merged in any order they equal
//! the single sequential measurement *exactly* — same cycles, same
//! counters, same latency histogram — at any worker count and under any
//! [`pool`] scheduling policy.
//!
//! Ops are derived statelessly from `(seed, op index)`, so an epoch's
//! slice can be regenerated without replaying its predecessors.

use fsencr::machine::{Machine, MachineError, MachineOpts, MapId, SecurityMode};
use fsencr::snapshot::StatsSnapshot;
use fsencr_fs::{GroupId, Mode, UserId};
use fsencr_sim::SplitMix64;

use crate::pool;

/// The file the stream drives, created by [`EpochStream::build`].
const FILE_NAME: &str = "epochs.bin";
const PAGE: u64 = 4096;

/// A deterministic op stream over one mapped file, partitionable at any
/// op boundary.
#[derive(Debug, Clone, Copy)]
pub struct EpochStream {
    /// Stream seed; distinct seeds give unrelated streams.
    pub seed: u64,
    /// File size in pages (fully initialised during setup).
    pub file_pages: u64,
    /// Total operations in the stream.
    pub ops: usize,
}

impl EpochStream {
    /// Builds the machine the stream runs on: file created, mapped, and
    /// every page initialised and persisted.
    ///
    /// # Errors
    ///
    /// Machine failures.
    pub fn build(
        &self,
        opts: MachineOpts,
        mode: SecurityMode,
    ) -> Result<(Machine, MapId), MachineError> {
        let mut m = Machine::new(opts, mode);
        let h = m.create(UserId::new(1), GroupId::new(1), FILE_NAME, Mode::PRIVATE, Some("pw"))?;
        let map = m.mmap(&h)?;
        let mut rng = SplitMix64::new(self.seed ^ 0xEF0C);
        let mut page = vec![0u8; PAGE as usize];
        for p in 0..self.file_pages {
            for b in page.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            m.write(0, map, p * PAGE, &page)?;
            m.persist(0, map, p * PAGE, PAGE)?;
        }
        Ok((m, map))
    }

    /// Applies op `index` of the stream. Stateless: the op depends only
    /// on `(seed, index)`, never on which ops ran before it.
    ///
    /// # Errors
    ///
    /// Machine failures.
    pub fn apply(&self, m: &mut Machine, map: MapId, index: usize) -> Result<(), MachineError> {
        let span = self.file_pages * PAGE;
        let mut rng = SplitMix64::new(
            self.seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let off = rng.next_below(span - 256);
        let len = (1 + rng.next_below(256)) as usize;
        match rng.next_below(8) {
            0..=2 => {
                let mut buf = vec![0u8; len];
                m.read(0, map, off, &mut buf)
            }
            3..=5 => m.write(0, map, off, &vec![index as u8; len]),
            6 => {
                m.write(0, map, off, &vec![!(index as u8); len])?;
                m.persist(0, map, off, len as u64)
            }
            _ => m.msync(0, map, off & !(PAGE - 1), PAGE),
        }
    }

    /// The op-index range of epoch `e` out of `epochs` (the remainder
    /// rides in the last epoch).
    fn slice(&self, e: usize, epochs: usize) -> std::ops::Range<usize> {
        let per = self.ops / epochs;
        let start = e * per;
        let end = if e + 1 == epochs { self.ops } else { start + per };
        start..end
    }

    /// Runs the whole stream sequentially and returns the measured
    /// counter delta over the op window (setup excluded).
    ///
    /// # Errors
    ///
    /// Machine failures.
    pub fn measure_sequential(
        &self,
        opts: MachineOpts,
        mode: SecurityMode,
    ) -> Result<StatsSnapshot, MachineError> {
        let (mut m, map) = self.build(opts, mode)?;
        let base = m.snapshot();
        for i in 0..self.ops {
            self.apply(&mut m, map, i)?;
        }
        Ok(m.snapshot().delta(&base))
    }

    /// The checkpoint pass: runs the stream once, snapshotting the
    /// machine at each epoch boundary. Entry `e` is the machine state at
    /// the *start* of epoch `e` (entry 0 is the post-setup state).
    ///
    /// # Errors
    ///
    /// Machine failures, or a snapshot refusal rendered as a string.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero or exceeds the op count.
    pub fn checkpoints(
        &self,
        opts: MachineOpts,
        mode: SecurityMode,
        epochs: usize,
    ) -> Result<Vec<Vec<u8>>, String> {
        assert!(epochs > 0 && epochs <= self.ops, "bad epoch count {epochs}");
        let (mut m, map) = self.build(opts, mode).map_err(|e| e.to_string())?;
        let mut cps = Vec::with_capacity(epochs);
        for e in 0..epochs {
            cps.push(m.save_snapshot().map_err(|err| format!("checkpoint {e}: {err}"))?);
            for i in self.slice(e, epochs) {
                self.apply(&mut m, map, i).map_err(|e| e.to_string())?;
            }
        }
        Ok(cps)
    }

    /// Replays all epochs concurrently on the worker pool from
    /// `checkpoints` and stitches the per-epoch deltas into one
    /// measurement equal to [`EpochStream::measure_sequential`]'s.
    ///
    /// # Panics
    ///
    /// Panics on a checkpoint that fails to restore or an op failure —
    /// both indicate checkpoint/stream mismatch, a harness bug.
    pub fn replay_parallel(
        &self,
        opts: MachineOpts,
        mode: SecurityMode,
        checkpoints: &[Vec<u8>],
    ) -> StatsSnapshot {
        let epochs = checkpoints.len();
        let stream = *self;
        let tasks: Vec<_> = checkpoints
            .iter()
            .enumerate()
            .map(|(e, bytes)| {
                let bytes = bytes.clone();
                move || {
                    let mut m = Machine::restore_snapshot(opts, mode, &bytes)
                        .unwrap_or_else(|err| panic!("epoch {e} restore: {err:?}"));
                    let map = m.mapping_of(FILE_NAME).expect("stream file is mapped");
                    let base = m.snapshot();
                    for i in stream.slice(e, epochs) {
                        stream
                            .apply(&mut m, map, i)
                            .unwrap_or_else(|err| panic!("epoch {e} op {i}: {err}"));
                    }
                    m.snapshot().delta(&base)
                }
            })
            .collect();
        let mut total = StatsSnapshot::default();
        for delta in pool::run_tasks(tasks) {
            total.merge(&delta);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_jobs`/`set_schedule` are process-global; tests that move
    /// them off the defaults serialize behind this lock.
    static POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn small_stream() -> EpochStream {
        EpochStream { seed: 0xE70C, file_pages: 8, ops: 200 }
    }

    #[test]
    fn stitched_replay_equals_sequential_at_any_jobs_and_schedule() {
        let _guard = POOL_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let stream = small_stream();
        let opts = MachineOpts::small_test();
        for mode in [SecurityMode::FsEncr, SecurityMode::MemoryOnly] {
            let sequential = stream.measure_sequential(opts, mode).unwrap();
            let cps = stream.checkpoints(opts, mode, 5).unwrap();
            for (jobs, sched) in [
                (1, pool::Schedule::Fifo),
                (4, pool::Schedule::Fifo),
                (4, pool::Schedule::Lifo),
                (4, pool::Schedule::EvenOdd),
                (3, pool::Schedule::Stagger),
            ] {
                pool::set_jobs(jobs);
                pool::set_schedule(sched);
                let stitched = stream.replay_parallel(opts, mode, &cps);
                assert_eq!(
                    stitched, sequential,
                    "divergence under {mode} jobs={jobs} sched={sched:?}"
                );
            }
            pool::set_jobs(0);
            pool::set_schedule(pool::Schedule::Fifo);
        }
    }

    #[test]
    fn epoch_count_does_not_change_the_measurement() {
        let _guard = POOL_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let stream = small_stream();
        let opts = MachineOpts::small_test();
        let sequential = stream.measure_sequential(opts, SecurityMode::FsEncr).unwrap();
        for epochs in [1, 2, 7, 25] {
            let cps = stream.checkpoints(opts, SecurityMode::FsEncr, epochs).unwrap();
            assert_eq!(cps.len(), epochs);
            let stitched = stream.replay_parallel(opts, SecurityMode::FsEncr, &cps);
            assert_eq!(stitched, sequential, "epochs={epochs}");
        }
    }

    #[test]
    fn slices_partition_the_stream() {
        let stream = EpochStream { seed: 1, file_pages: 2, ops: 103 };
        for epochs in [1, 2, 5, 103] {
            let mut covered = 0;
            let mut next = 0;
            for e in 0..epochs {
                let r = stream.slice(e, epochs);
                assert_eq!(r.start, next, "epochs={epochs} e={e}");
                next = r.end;
                covered += r.len();
            }
            assert_eq!(covered, stream.ops, "epochs={epochs}");
            assert_eq!(next, stream.ops);
        }
    }
}
