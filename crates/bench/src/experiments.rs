//! The experiments: one function per paper table/figure, plus ablations.

use fsencr::machine::{Machine, MachineOpts, SecurityMode};
use fsencr::security;
use fsencr_crypto::Key128;
use fsencr_fs::{GroupId, Mode, UserId};
use fsencr_workloads::daxmicro::{DaxStride, DaxSwap};
use fsencr_workloads::driver::{run_workload, Workload};
use fsencr_workloads::pmemkv::{DbBench, PmemKv};
use fsencr_workloads::whisper::{CtreeBench, HashmapBench, Ycsb};

use crate::table::Figure;

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale) as u64).max(32)
}

fn run(mode: SecurityMode, w: &mut dyn Workload) -> fsencr::machine::RunStats {
    run_workload(MachineOpts::benchmark(), mode, w)
        .unwrap_or_else(|e| panic!("{} under {mode}: {e}", w.name()))
        .stats
}

fn run_with(
    opts: MachineOpts,
    mode: SecurityMode,
    w: &mut dyn Workload,
) -> fsencr::machine::RunStats {
    run_workload(opts, mode, w)
        .unwrap_or_else(|e| panic!("{} under {mode}: {e}", w.name()))
        .stats
}

type Factory = Box<dyn Fn() -> Box<dyn Workload>>;

fn whisper_factories(scale: f64) -> Vec<(String, Factory)> {
    let n = scaled(16 * 1024, scale);
    vec![
        (
            "YCSB".to_string(),
            Box::new(move || Box::new(Ycsb::new(n, n, 2)) as Box<dyn Workload>) as Factory,
        ),
        (
            "Hashmap".to_string(),
            Box::new(move || Box::new(HashmapBench::new(n, 2)) as Box<dyn Workload>),
        ),
        (
            "CTree".to_string(),
            Box::new(move || Box::new(CtreeBench::new(n, 2)) as Box<dyn Workload>),
        ),
    ]
}

fn pmemkv_factories(scale: f64) -> Vec<(String, Factory)> {
    let mut out: Vec<(String, Factory)> = Vec::new();
    for bench in [
        DbBench::FillRandom,
        DbBench::FillSeq,
        DbBench::Overwrite,
        DbBench::ReadRandom,
        DbBench::ReadSeq,
    ] {
        for large in [false, true] {
            let (value, keys, ops) = if large {
                (4096usize, scaled(3072, scale), scaled(3072, scale))
            } else {
                (64usize, scaled(32768, scale), scaled(16384, scale))
            };
            let name = PmemKv::new(bench, value, 32, 32, 2).name();
            out.push((
                name,
                Box::new(move || {
                    Box::new(PmemKv::new(bench, value, keys, ops, 2)) as Box<dyn Workload>
                }),
            ));
        }
    }
    out
}

fn daxmicro_factories(scale: f64) -> Vec<(String, Factory)> {
    let file = ((24 << 20) as f64 * scale.max(0.2)) as u64 / 4096 * 4096;
    let reads = scaled(400_000, scale);
    let swaps = scaled(60_000, scale);
    vec![
        (
            "DAX-1".to_string(),
            Box::new(move || Box::new(DaxStride::new(16, file, reads)) as Box<dyn Workload>) as Factory,
        ),
        (
            "DAX-2".to_string(),
            Box::new(move || Box::new(DaxStride::new(128, file, reads)) as Box<dyn Workload>),
        ),
        (
            "DAX-3".to_string(),
            Box::new(move || Box::new(DaxSwap::new(16, file, swaps)) as Box<dyn Workload>),
        ),
        (
            "DAX-4".to_string(),
            Box::new(move || Box::new(DaxSwap::new(128, file, swaps)) as Box<dyn Workload>),
        ),
    ]
}

/// Figure 3: slowdown of software filesystem encryption (eCryptfs model)
/// over plain ext4-DAX, Whisper benchmarks.
pub fn fig3(scale: f64) -> Figure {
    let mut fig = Figure::new(
        "Figure 3: software-encryption slowdown (normalized to ext4-dax)",
        vec!["slowdown".to_string()],
    );
    for (name, factory) in whisper_factories(scale) {
        let dax = run(SecurityMode::Unencrypted, factory().as_mut());
        let soft = run(SecurityMode::Software, factory().as_mut());
        fig.push(name, vec![soft.cycles as f64 / dax.cycles as f64]);
    }
    fig
}

fn normalized_figures(
    tag: &str,
    factories: Vec<(String, Factory)>,
) -> (Figure, Figure, Figure) {
    let mut slow = Figure::new(
        format!("{tag}: FsEncr slowdown (normalized to baseline security)"),
        vec!["slowdown".to_string()],
    );
    let mut writes = Figure::new(
        format!("{tag}: NVM writes (normalized to baseline security)"),
        vec!["writes".to_string()],
    );
    let mut reads = Figure::new(
        format!("{tag}: NVM reads (normalized to baseline security)"),
        vec!["reads".to_string()],
    );
    for (name, factory) in factories {
        let base = run(SecurityMode::MemoryOnly, factory().as_mut());
        let fse = run(SecurityMode::FsEncr, factory().as_mut());
        slow.push(name.clone(), vec![fse.cycles as f64 / base.cycles as f64]);
        writes.push(
            name.clone(),
            vec![fse.nvm_writes.max(1) as f64 / base.nvm_writes.max(1) as f64],
        );
        reads.push(
            name,
            vec![fse.nvm_reads.max(1) as f64 / base.nvm_reads.max(1) as f64],
        );
    }
    (slow, writes, reads)
}

/// Figures 8, 9, 10: PMEMKV slowdown / writes / reads, FsEncr normalized
/// to baseline security.
pub fn fig8_9_10(scale: f64) -> (Figure, Figure, Figure) {
    normalized_figures("Figures 8-10 (PMEMKV)", pmemkv_factories(scale))
}

/// Figure 11 (a,b,c): Whisper slowdown / writes / reads, plus the
/// software-encryption comparison the text quotes (98.33% overhead
/// reduction).
pub fn fig11(scale: f64) -> (Figure, Figure, Figure, Figure) {
    let (slow, writes, reads) = normalized_figures("Figure 11 (Whisper)", whisper_factories(scale));
    let mut reduction = Figure::new(
        "Figure 11 (text): FsEncr reduction of filesystem-encryption overhead vs software [%]",
        vec!["reduction %".to_string()],
    );
    for (name, factory) in whisper_factories(scale) {
        let dax = run(SecurityMode::Unencrypted, factory().as_mut());
        let base = run(SecurityMode::MemoryOnly, factory().as_mut());
        let fse = run(SecurityMode::FsEncr, factory().as_mut());
        let soft = run(SecurityMode::Software, factory().as_mut());
        let ov_soft = soft.cycles as f64 / dax.cycles as f64 - 1.0;
        let ov_fse = (fse.cycles as f64 / base.cycles as f64 - 1.0).max(0.0);
        let red = 100.0 * (1.0 - ov_fse / ov_soft.max(1e-9));
        reduction.push(name, vec![red]);
    }
    (slow, writes, reads, reduction)
}

/// Figures 12, 13, 14: synthetic DAX micro-benchmarks, FsEncr normalized
/// to baseline security.
pub fn fig12_13_14(scale: f64) -> (Figure, Figure, Figure) {
    normalized_figures("Figures 12-14 (DAX micro)", daxmicro_factories(scale))
}

/// Figure 15: sensitivity of FsEncr overhead to metadata-cache size for
/// Fillrandom-L, Hashmap and DAX-2. Values are percent slowdown over the
/// baseline-security machine with the *same* cache size.
pub fn fig15(scale: f64) -> Figure {
    let sizes: &[(usize, &str)] = &[
        (128 << 10, "128KB"),
        (256 << 10, "256KB"),
        (512 << 10, "512KB"),
        (1 << 20, "1MB"),
        (2 << 20, "2MB"),
    ];
    let mut fig = Figure::new(
        "Figure 15: FsEncr slowdown [%] vs metadata-cache size",
        sizes.iter().map(|(_, n)| n.to_string()).collect(),
    );
    let n_large = scaled(3072, scale);
    let n_ops = scaled(16 * 1024, scale);
    let file = ((24 << 20) as f64 * scale.max(0.2)) as u64 / 4096 * 4096;
    let reads = scaled(400_000, scale);
    let workloads: Vec<(String, Factory)> = vec![
        (
            "Fillrandom-L".to_string(),
            Box::new(move || {
                Box::new(PmemKv::new(DbBench::FillRandom, 4096, n_large, n_large, 2))
                    as Box<dyn Workload>
            }) as Factory,
        ),
        (
            "Hashmap".to_string(),
            Box::new(move || Box::new(HashmapBench::new(n_ops, 2)) as Box<dyn Workload>),
        ),
        (
            "DAX-2".to_string(),
            Box::new(move || Box::new(DaxStride::new(128, file, reads)) as Box<dyn Workload>),
        ),
    ];
    for (name, factory) in workloads {
        let mut row = Vec::new();
        for (bytes, _) in sizes {
            let opts = MachineOpts::benchmark();
            let opts = MachineOpts {
                config: opts.config.with_metadata_cache_bytes(*bytes),
                ..opts
            };
            let base = run_with(opts, SecurityMode::MemoryOnly, factory().as_mut());
            let fse = run_with(opts, SecurityMode::FsEncr, factory().as_mut());
            row.push(100.0 * (fse.cycles as f64 / base.cycles as f64 - 1.0));
        }
        fig.push(name, row);
    }
    fig
}

const SECRET: &[u8] = b"CLASSIFIED-RECORD-FOR-TABLE-I";

fn secret_machine(mode: SecurityMode, extra_file: bool) -> (Machine, Key128, Option<Key128>) {
    let mut m = Machine::new(MachineOpts::small_test(), mode);
    let user = UserId::new(1);
    let h = m
        .create(user, GroupId::new(1), "secret", Mode::PRIVATE, Some("pw"))
        .expect("create");
    let fek = h.fek.unwrap_or(Key128::from_seed(0));
    let map = m.mmap(&h).expect("mmap");
    m.write(0, map, 0, SECRET).expect("write");
    m.persist(0, map, 0, SECRET.len() as u64).expect("persist");
    let other = if extra_file {
        let h2 = m
            .create(user, GroupId::new(1), "other", Mode::PRIVATE, Some("pw2"))
            .expect("create2");
        let map2 = m.mmap(&h2).expect("mmap2");
        m.write(0, map2, 0, b"unrelated").expect("write2");
        m.persist(0, map2, 0, 9).expect("persist2");
        h2.fek
    } else {
        None
    };
    m.shutdown_flush().expect("flush");
    (m, fek, other)
}

/// Table I: vulnerability of systems A (memory encryption only), B (one
/// filesystem key) and C (per-file keys) as the attacker accumulates
/// keys. 1 = the secret is exposed, 0 = protected.
pub fn table1() -> Figure {
    let mut fig = Figure::new(
        "Table I: vulnerability (1 = secret exposed)",
        vec!["System A".to_string(), "System B".to_string(), "System C".to_string()],
    );
    fig.summarize = false;

    // System A: memory encryption only.
    let (ma, _, _) = secret_machine(SecurityMode::MemoryOnly, false);
    // System B: whole-filesystem key, modelled as FsEncr with the single
    // shared key protecting the secret.
    let (mb, fs_key, _) = secret_machine(SecurityMode::FsEncr, false);
    // System C: per-file keys; the attacker's "single filesystem key" is
    // some *other* file's key.
    let (mc, file_key, other_key) = secret_machine(SecurityMode::FsEncr, true);
    let other_key = other_key.expect("extra file");

    let mem_a = ma.mem_key();
    let mem_b = mb.mem_key();
    let mem_c = mc.mem_key();

    let leak = |m: &Machine, mem: &Key128, keys: &[Key128]| -> f64 {
        security::attacker_decrypts(m, mem, keys, SECRET) as u8 as f64
    };

    fig.push(
        "memory key revealed",
        vec![
            leak(&ma, &mem_a, &[]),
            leak(&mb, &mem_b, &[]),
            leak(&mc, &mem_c, &[]),
        ],
    );
    fig.push(
        "+ single fs key revealed",
        vec![
            leak(&ma, &mem_a, &[]),
            leak(&mb, &mem_b, &[fs_key]),
            leak(&mc, &mem_c, &[other_key]),
        ],
    );
    fig.push(
        "+ all file keys revealed",
        vec![
            leak(&ma, &mem_a, &[]),
            leak(&mb, &mem_b, &[fs_key]),
            leak(&mc, &mem_c, &[other_key, file_key]),
        ],
    );
    fig
}

/// Ablation: OTT lookup latency (the paper trades 1 cycle for 20 to save
/// power — how far can that go?).
pub fn ablation_ott(scale: f64) -> Figure {
    let mut fig = Figure::new(
        "Ablation: OTT lookup latency vs YCSB slowdown over baseline",
        vec!["slowdown".to_string()],
    );
    let n = scaled(8 * 1024, scale);
    let base = {
        let mut w = Ycsb::new(n, n, 2);
        run(SecurityMode::MemoryOnly, &mut w)
    };
    for lat in [1u64, 20, 100, 400] {
        let mut opts = MachineOpts::benchmark();
        opts.config.security.ott_latency_cycles = lat;
        let mut w = Ycsb::new(n, n, 2);
        let fse = run_with(opts, SecurityMode::FsEncr, &mut w);
        fig.push(
            format!("ott-latency-{lat}"),
            vec![fse.cycles as f64 / base.cycles as f64],
        );
    }
    fig
}

/// Ablation: Osiris stop-loss period vs write-heavy overhead (persisting
/// counters more often costs writes; less often lengthens recovery).
pub fn ablation_osiris(scale: f64) -> Figure {
    let mut fig = Figure::new(
        "Ablation: Osiris stop-loss vs Overwrite-S (normalized to stop-loss 4)",
        vec!["slowdown".to_string(), "nvm writes".to_string()],
    );
    let n = scaled(4096, scale);
    let reference = {
        let mut w = PmemKv::new(DbBench::Overwrite, 64, n, n, 2);
        run(SecurityMode::FsEncr, &mut w)
    };
    for stop_loss in [1u32, 2, 4, 8, 16] {
        let mut opts = MachineOpts::benchmark();
        opts.config.security.osiris_stop_loss = stop_loss;
        let mut w = PmemKv::new(DbBench::Overwrite, 64, n, n, 2);
        let r = run_with(opts, SecurityMode::FsEncr, &mut w);
        fig.push(
            format!("stop-loss-{stop_loss}"),
            vec![
                r.cycles as f64 / reference.cycles as f64,
                r.nvm_writes as f64 / reference.nvm_writes.max(1) as f64,
            ],
        );
    }
    fig
}

/// Ablation: shared vs partitioned metadata cache (Section III-D floats
/// partitioning MECB/FECB/Merkle capacity; does it help or hurt?).
pub fn ablation_partition(scale: f64) -> Figure {
    let mut fig = Figure::new(
        "Ablation: metadata-cache partitioning (FsEncr slowdown over baseline security)",
        vec!["shared".to_string(), "partitioned".to_string()],
    );
    let n_large = scaled(3072, scale);
    let file = ((24 << 20) as f64 * scale.max(0.2)) as u64 / 4096 * 4096;
    let reads = scaled(400_000, scale);
    let factories: Vec<(String, Factory)> = vec![
        (
            "Fillrandom-L".to_string(),
            Box::new(move || {
                Box::new(PmemKv::new(DbBench::FillRandom, 4096, n_large, n_large, 2))
                    as Box<dyn Workload>
            }) as Factory,
        ),
        (
            "DAX-2".to_string(),
            Box::new(move || Box::new(DaxStride::new(128, file, reads)) as Box<dyn Workload>),
        ),
    ];
    for (name, factory) in factories {
        let mut row = Vec::new();
        for partitioned in [false, true] {
            let mut opts = MachineOpts::benchmark();
            opts.config.security.partition_metadata_cache = partitioned;
            let base = run_with(opts, SecurityMode::MemoryOnly, factory().as_mut());
            let fse = run_with(opts, SecurityMode::FsEncr, factory().as_mut());
            row.push(fse.cycles as f64 / base.cycles as f64);
        }
        fig.push(name, row);
    }
    fig
}

/// Ablation: counter-mode vs direct (serialized) encryption — Section
/// II-C's justification for CTR mode.
pub fn ablation_direct(scale: f64) -> Figure {
    let mut fig = Figure::new(
        "Ablation: CTR vs direct encryption (normalized to ext4-dax)",
        vec!["ctr".to_string(), "direct".to_string()],
    );
    let file = ((24 << 20) as f64 * scale.max(0.2)) as u64 / 4096 * 4096;
    let reads = scaled(200_000, scale);
    let factories: Vec<(String, Factory)> = vec![
        (
            "DAX-1".to_string(),
            Box::new(move || Box::new(DaxStride::new(16, file, reads)) as Box<dyn Workload>) as Factory,
        ),
        (
            "Readrandom-S".to_string(),
            Box::new(move || {
                Box::new(PmemKv::new(DbBench::ReadRandom, 64, scaled(32768, scale), scaled(16384, scale), 2))
                    as Box<dyn Workload>
            }),
        ),
    ];
    for (name, factory) in factories {
        let dax = run(SecurityMode::Unencrypted, factory().as_mut());
        let ctr = run(SecurityMode::FsEncr, factory().as_mut());
        let mut opts = MachineOpts::benchmark();
        opts.config.security.direct_encryption = true;
        let direct = run_with(opts, SecurityMode::FsEncr, factory().as_mut());
        fig.push(
            name,
            vec![
                ctr.cycles as f64 / dax.cycles as f64,
                direct.cycles as f64 / dax.cycles as f64,
            ],
        );
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_matrix() {
        let fig = table1();
        // Row 1: only A falls.
        assert_eq!(fig.value("memory key revealed", "System A"), Some(1.0));
        assert_eq!(fig.value("memory key revealed", "System B"), Some(0.0));
        assert_eq!(fig.value("memory key revealed", "System C"), Some(0.0));
        // Row 2: A and B fall, C still stands.
        assert_eq!(fig.value("+ single fs key revealed", "System B"), Some(1.0));
        assert_eq!(fig.value("+ single fs key revealed", "System C"), Some(0.0));
        // Row 3: everything falls.
        assert_eq!(fig.value("+ all file keys revealed", "System C"), Some(1.0));
    }

    #[test]
    fn fig3_shows_software_overhead() {
        let fig = fig3(0.02);
        for (name, v) in &fig.rows {
            assert!(v[0] > 1.2, "{name}: software slowdown {v:?} too small");
        }
    }

    #[test]
    fn smoke_fig8_shapes() {
        let (slow, writes, reads) = fig8_9_10(0.01);
        for (name, v) in &slow.rows {
            assert!(v[0] > 0.9 && v[0] < 3.0, "{name} slowdown {v:?}");
        }
        // At smoke scale the absolute read/write counts are tiny, so the
        // ratios are noisy; just require them to be sane.
        for fig in [&writes, &reads] {
            for (name, v) in &fig.rows {
                assert!(v[0] > 0.2 && v[0] < 10.0, "{name} ratio {v:?} insane");
            }
        }
    }
}
