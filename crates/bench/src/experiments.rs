//! The experiments: one function per paper table/figure, plus ablations.
//!
//! Every figure decomposes into independent *cells* — one `(workload,
//! security mode, machine config)` simulation each. The cell lists are
//! built in deterministic source order, fanned out across worker threads
//! (see [`crate::pool`]), and gathered back in submission order before the
//! figure is assembled, so the output is identical to a serial run at any
//! worker count. Each cell also records its wall-clock time with
//! [`crate::report`] for the `harness bench` subcommand.

use std::time::Instant;

use fsencr::machine::{MachineOpts, Preset, RunStats, SecurityMode};
use fsencr::security;
use fsencr_crypto::Key128;
use fsencr_fs::{GroupId, Mode, UserId};
use fsencr_workloads::daxmicro::{DaxStride, DaxSwap};
use fsencr_workloads::driver::{run_workload, run_workload_warm, Workload};
use fsencr_workloads::pmemkv::{DbBench, PmemKv};
use fsencr_workloads::whisper::{CtreeBench, HashmapBench, Ycsb};

use crate::cellcache;
use crate::pool;
use crate::report;
use crate::snapstore;
use crate::table::Figure;

use fsencr::machine::Machine;

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale) as u64).max(32)
}

fn run_with(
    opts: MachineOpts,
    mode: SecurityMode,
    w: &mut dyn Workload,
) -> RunStats {
    run_workload(opts, mode, w)
        .unwrap_or_else(|e| panic!("{} under {mode}: {e}", w.name()))
        .stats
}

/// Builds a fresh workload instance per cell run.
pub type Factory = Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>;

/// One independent experiment cell.
struct Cell<'a> {
    /// Workload label, used for the figure row and the bench record.
    label: String,
    opts: MachineOpts,
    mode: SecurityMode,
    factory: &'a Factory,
}

/// Runs every cell (concurrently when the pool has more than one worker)
/// and returns the stats in the cells' submission order.
///
/// When the [`cellcache`] is enabled, a cell whose content-addressed key
/// is already cached returns the stored (bit-identical) stats and skips
/// both the simulation and the `harness bench` wall-clock record — the
/// record would time a lookup, not the engine. Fresh results are stored
/// back; the harness persists the cache after the figure completes.
///
/// When the [`snapstore`] is enabled, a cell that misses the cell cache
/// still tries to restore its post-setup machine image (keyed by
/// [`Workload::setup_spec`]) and skip the simulated setup; a cold setup
/// by a warm-start-capable workload deposits a fresh snapshot for later
/// cells and runs. Warm and cold paths measure bit-identically (see the
/// `warm_start` suite), so figure bytes never depend on the store.
fn run_cells(cells: Vec<Cell<'_>>) -> Vec<RunStats> {
    let tasks: Vec<_> = cells
        .into_iter()
        .map(|cell| {
            move || {
                let mut workload = (cell.factory)();
                let key = cellcache::cell_key(
                    &cell.label,
                    cell.mode,
                    &cell.opts,
                    &workload.spec(),
                );
                if let Some(stats) = cellcache::lookup(&key) {
                    return stats;
                }
                if !snapstore::is_enabled() {
                    let start = Instant::now();
                    let stats = run_with(cell.opts, cell.mode, workload.as_mut());
                    report::record_cell(&cell.label, cell.mode, start.elapsed(), &stats);
                    cellcache::store(&key, &stats);
                    return stats;
                }
                let skey =
                    snapstore::snap_key(cell.mode, &cell.opts, &workload.setup_spec());
                let snap = snapstore::lookup(&skey);
                let start = Instant::now();
                let warm =
                    run_workload_warm(cell.opts, cell.mode, workload.as_mut(), snap.as_deref())
                        .unwrap_or_else(|e| {
                            panic!("{} under {}: {e}", cell.label, cell.mode)
                        });
                let stats = warm.result.stats;
                report::record_cell(&cell.label, cell.mode, start.elapsed(), &stats);
                if let Some(bytes) = warm.snapshot {
                    snapstore::store(&skey, &bytes);
                }
                cellcache::store(&key, &stats);
                stats
            }
        })
        .collect();
    pool::run_tasks(tasks)
}

/// The `workloads x modes` cross product on the benchmark machine, in
/// workload-major order: `stats[i * modes.len() + j]` is workload `i`
/// under mode `j`.
fn mode_cells<'a>(
    factories: &'a [(String, Factory)],
    modes: &[SecurityMode],
) -> Vec<Cell<'a>> {
    factories
        .iter()
        .flat_map(|(name, factory)| {
            modes.iter().map(move |&mode| Cell {
                label: name.clone(),
                opts: MachineOpts::benchmark(),
                mode,
                factory,
            })
        })
        .collect()
}

fn whisper_factories(scale: f64) -> Vec<(String, Factory)> {
    let n = scaled(16 * 1024, scale);
    vec![
        (
            "YCSB".to_string(),
            Box::new(move || Box::new(Ycsb::new(n, n, 2)) as Box<dyn Workload>) as Factory,
        ),
        (
            "Hashmap".to_string(),
            Box::new(move || Box::new(HashmapBench::new(n, 2)) as Box<dyn Workload>),
        ),
        (
            "CTree".to_string(),
            Box::new(move || Box::new(CtreeBench::new(n, 2)) as Box<dyn Workload>),
        ),
    ]
}

fn pmemkv_factories(scale: f64) -> Vec<(String, Factory)> {
    let mut out: Vec<(String, Factory)> = Vec::new();
    for bench in [
        DbBench::FillRandom,
        DbBench::FillSeq,
        DbBench::Overwrite,
        DbBench::ReadRandom,
        DbBench::ReadSeq,
    ] {
        for large in [false, true] {
            let (value, keys, ops) = if large {
                (4096usize, scaled(3072, scale), scaled(3072, scale))
            } else {
                (64usize, scaled(32768, scale), scaled(16384, scale))
            };
            let name = PmemKv::new(bench, value, 32, 32, 2).name();
            out.push((
                name,
                Box::new(move || {
                    Box::new(PmemKv::new(bench, value, keys, ops, 2)) as Box<dyn Workload>
                }),
            ));
        }
    }
    out
}

fn daxmicro_factories(scale: f64) -> Vec<(String, Factory)> {
    let file = ((24 << 20) as f64 * scale.max(0.2)) as u64 / 4096 * 4096;
    let reads = scaled(400_000, scale);
    let swaps = scaled(60_000, scale);
    vec![
        (
            "DAX-1".to_string(),
            Box::new(move || Box::new(DaxStride::new(16, file, reads)) as Box<dyn Workload>) as Factory,
        ),
        (
            "DAX-2".to_string(),
            Box::new(move || Box::new(DaxStride::new(128, file, reads)) as Box<dyn Workload>),
        ),
        (
            "DAX-3".to_string(),
            Box::new(move || Box::new(DaxSwap::new(16, file, swaps)) as Box<dyn Workload>),
        ),
        (
            "DAX-4".to_string(),
            Box::new(move || Box::new(DaxSwap::new(128, file, swaps)) as Box<dyn Workload>),
        ),
    ]
}

/// One profilable cell: an owned `(workload, mode, config)` triple that
/// [`crate::profile`] fans out across the pool. The factory is shared
/// (`Arc`) because one workload row appears once per security mode.
pub struct ProfileCellSpec {
    /// Workload label (figure row name).
    pub label: String,
    /// Machine configuration for the cell.
    pub opts: MachineOpts,
    /// Security mode the cell runs under.
    pub mode: SecurityMode,
    /// Builds a fresh workload instance for the run.
    pub factory: std::sync::Arc<Factory>,
}

/// The cell list of `fig` at `scale`, in the same deterministic
/// workload-major order the figure itself runs them. Returns `None` for
/// subcommands without a profilable workload/mode matrix (`table1`,
/// `fig15`, ablations).
pub fn profile_cells(fig: &str, scale: f64) -> Option<Vec<ProfileCellSpec>> {
    let (factories, modes): (Vec<(String, Factory)>, Vec<SecurityMode>) = match fig {
        "fig3" => (
            whisper_factories(scale),
            vec![SecurityMode::Unencrypted, SecurityMode::Software],
        ),
        "fig8" | "fig9" | "fig10" | "fig8-10" => (
            pmemkv_factories(scale),
            vec![SecurityMode::MemoryOnly, SecurityMode::FsEncr],
        ),
        "fig11" => (
            whisper_factories(scale),
            vec![
                SecurityMode::Unencrypted,
                SecurityMode::MemoryOnly,
                SecurityMode::FsEncr,
                SecurityMode::Software,
            ],
        ),
        "fig12" | "fig13" | "fig14" | "fig12-14" => (
            daxmicro_factories(scale),
            vec![SecurityMode::MemoryOnly, SecurityMode::FsEncr],
        ),
        _ => return None,
    };
    Some(
        factories
            .into_iter()
            .flat_map(|(label, factory)| {
                let factory = std::sync::Arc::new(factory);
                modes.iter().map(move |&mode| ProfileCellSpec {
                    label: label.clone(),
                    opts: MachineOpts::benchmark(),
                    mode,
                    factory: factory.clone(),
                })
            })
            .collect(),
    )
}

/// Figure 3: slowdown of software filesystem encryption (eCryptfs model)
/// over plain ext4-DAX, Whisper benchmarks.
pub fn fig3(scale: f64) -> Figure {
    let factories = whisper_factories(scale);
    let stats = run_cells(mode_cells(
        &factories,
        &[SecurityMode::Unencrypted, SecurityMode::Software],
    ));
    let mut fig = Figure::new(
        "Figure 3: software-encryption slowdown (normalized to ext4-dax)",
        vec!["slowdown".to_string()],
    );
    for (i, (name, _)) in factories.iter().enumerate() {
        let dax = stats[2 * i];
        let soft = stats[2 * i + 1];
        fig.push(name.clone(), vec![soft.cycles as f64 / dax.cycles as f64]);
    }
    fig
}

/// Assembles the slowdown / writes / reads triple from per-workload
/// `(baseline security, FsEncr)` stat pairs.
fn normalized_from(
    tag: &str,
    rows: Vec<(String, RunStats, RunStats)>,
) -> (Figure, Figure, Figure) {
    let mut slow = Figure::new(
        format!("{tag}: FsEncr slowdown (normalized to baseline security)"),
        vec!["slowdown".to_string()],
    );
    let mut writes = Figure::new(
        format!("{tag}: NVM writes (normalized to baseline security)"),
        vec!["writes".to_string()],
    );
    let mut reads = Figure::new(
        format!("{tag}: NVM reads (normalized to baseline security)"),
        vec!["reads".to_string()],
    );
    for (name, base, fse) in rows {
        slow.push(name.clone(), vec![fse.cycles as f64 / base.cycles as f64]);
        writes.push(
            name.clone(),
            vec![fse.nvm_writes.max(1) as f64 / base.nvm_writes.max(1) as f64],
        );
        reads.push(
            name,
            vec![fse.nvm_reads.max(1) as f64 / base.nvm_reads.max(1) as f64],
        );
    }
    (slow, writes, reads)
}

fn normalized_figures(
    tag: &str,
    factories: Vec<(String, Factory)>,
) -> (Figure, Figure, Figure) {
    let stats = run_cells(mode_cells(
        &factories,
        &[SecurityMode::MemoryOnly, SecurityMode::FsEncr],
    ));
    let rows = factories
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.clone(), stats[2 * i], stats[2 * i + 1]))
        .collect();
    normalized_from(tag, rows)
}

/// Figures 8, 9, 10: PMEMKV slowdown / writes / reads, FsEncr normalized
/// to baseline security.
pub fn fig8_9_10(scale: f64) -> (Figure, Figure, Figure) {
    normalized_figures("Figures 8-10 (PMEMKV)", pmemkv_factories(scale))
}

/// Figure 11 (a,b,c): Whisper slowdown / writes / reads, plus the
/// software-encryption comparison the text quotes (98.33% overhead
/// reduction). All four security modes run once per workload and the four
/// figures are assembled from that single matrix.
pub fn fig11(scale: f64) -> (Figure, Figure, Figure, Figure) {
    let factories = whisper_factories(scale);
    let modes = [
        SecurityMode::Unencrypted,
        SecurityMode::MemoryOnly,
        SecurityMode::FsEncr,
        SecurityMode::Software,
    ];
    let stats = run_cells(mode_cells(&factories, &modes));
    let row = |i: usize, j: usize| stats[i * modes.len() + j];
    let rows = factories
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.clone(), row(i, 1), row(i, 2)))
        .collect();
    let (slow, writes, reads) = normalized_from("Figure 11 (Whisper)", rows);
    let mut reduction = Figure::new(
        "Figure 11 (text): FsEncr reduction of filesystem-encryption overhead vs software [%]",
        vec!["reduction %".to_string()],
    );
    for (i, (name, _)) in factories.iter().enumerate() {
        let (dax, base, fse, soft) = (row(i, 0), row(i, 1), row(i, 2), row(i, 3));
        let ov_soft = soft.cycles as f64 / dax.cycles as f64 - 1.0;
        let ov_fse = (fse.cycles as f64 / base.cycles as f64 - 1.0).max(0.0);
        let red = 100.0 * (1.0 - ov_fse / ov_soft.max(1e-9));
        reduction.push(name.clone(), vec![red]);
    }
    (slow, writes, reads, reduction)
}

/// Figures 12, 13, 14: synthetic DAX micro-benchmarks, FsEncr normalized
/// to baseline security.
pub fn fig12_13_14(scale: f64) -> (Figure, Figure, Figure) {
    normalized_figures("Figures 12-14 (DAX micro)", daxmicro_factories(scale))
}

/// Figure 15: sensitivity of FsEncr overhead to metadata-cache size for
/// Fillrandom-L, Hashmap and DAX-2. Values are percent slowdown over the
/// baseline-security machine with the *same* cache size.
pub fn fig15(scale: f64) -> Figure {
    let sizes: &[(usize, &str)] = &[
        (128 << 10, "128KB"),
        (256 << 10, "256KB"),
        (512 << 10, "512KB"),
        (1 << 20, "1MB"),
        (2 << 20, "2MB"),
    ];
    let mut fig = Figure::new(
        "Figure 15: FsEncr slowdown [%] vs metadata-cache size",
        sizes.iter().map(|(_, n)| n.to_string()).collect(),
    );
    let n_large = scaled(3072, scale);
    let n_ops = scaled(16 * 1024, scale);
    let file = ((24 << 20) as f64 * scale.max(0.2)) as u64 / 4096 * 4096;
    let reads = scaled(400_000, scale);
    let workloads: Vec<(String, Factory)> = vec![
        (
            "Fillrandom-L".to_string(),
            Box::new(move || {
                Box::new(PmemKv::new(DbBench::FillRandom, 4096, n_large, n_large, 2))
                    as Box<dyn Workload>
            }) as Factory,
        ),
        (
            "Hashmap".to_string(),
            Box::new(move || Box::new(HashmapBench::new(n_ops, 2)) as Box<dyn Workload>),
        ),
        (
            "DAX-2".to_string(),
            Box::new(move || Box::new(DaxStride::new(128, file, reads)) as Box<dyn Workload>),
        ),
    ];
    let mut cells = Vec::new();
    for (name, factory) in &workloads {
        for (bytes, size_name) in sizes {
            let opts = MachineOpts::preset(Preset::Paper)
                .metadata_cache_bytes(*bytes)
                .build();
            for mode in [SecurityMode::MemoryOnly, SecurityMode::FsEncr] {
                cells.push(Cell {
                    label: format!("{name}/{size_name}"),
                    opts,
                    mode,
                    factory,
                });
            }
        }
    }
    let stats = run_cells(cells);
    for (w, (name, _)) in workloads.iter().enumerate() {
        let mut row = Vec::new();
        for s in 0..sizes.len() {
            let at = (w * sizes.len() + s) * 2;
            let (base, fse) = (stats[at], stats[at + 1]);
            row.push(100.0 * (fse.cycles as f64 / base.cycles as f64 - 1.0));
        }
        fig.push(name.clone(), row);
    }
    fig
}

const SECRET: &[u8] = b"CLASSIFIED-RECORD-FOR-TABLE-I";

fn secret_machine(mode: SecurityMode, extra_file: bool) -> (Machine, Key128, Option<Key128>) {
    let mut m = Machine::new(MachineOpts::small_test(), mode);
    let user = UserId::new(1);
    let h = m
        .create(user, GroupId::new(1), "secret", Mode::PRIVATE, Some("pw"))
        .expect("create");
    let fek = h.fek.unwrap_or(Key128::from_seed(0));
    let map = m.mmap(&h).expect("mmap");
    m.write(0, map, 0, SECRET).expect("write");
    m.persist(0, map, 0, SECRET.len() as u64).expect("persist");
    let other = if extra_file {
        let h2 = m
            .create(user, GroupId::new(1), "other", Mode::PRIVATE, Some("pw2"))
            .expect("create2");
        let map2 = m.mmap(&h2).expect("mmap2");
        m.write(0, map2, 0, b"unrelated").expect("write2");
        m.persist(0, map2, 0, 9).expect("persist2");
        h2.fek
    } else {
        None
    };
    m.shutdown_flush().expect("flush");
    (m, fek, other)
}

/// Table I: vulnerability of systems A (memory encryption only), B (one
/// filesystem key) and C (per-file keys) as the attacker accumulates
/// keys. 1 = the secret is exposed, 0 = protected.
pub fn table1() -> Figure {
    let mut fig = Figure::new(
        "Table I: vulnerability (1 = secret exposed)",
        vec!["System A".to_string(), "System B".to_string(), "System C".to_string()],
    );
    fig.summarize = false;

    // System A: memory encryption only.
    let (ma, _, _) = secret_machine(SecurityMode::MemoryOnly, false);
    // System B: whole-filesystem key, modelled as FsEncr with the single
    // shared key protecting the secret.
    let (mb, fs_key, _) = secret_machine(SecurityMode::FsEncr, false);
    // System C: per-file keys; the attacker's "single filesystem key" is
    // some *other* file's key.
    let (mc, file_key, other_key) = secret_machine(SecurityMode::FsEncr, true);
    let other_key = other_key.expect("extra file");

    let mem_a = ma.mem_key();
    let mem_b = mb.mem_key();
    let mem_c = mc.mem_key();

    let leak = |m: &Machine, mem: &Key128, keys: &[Key128]| -> f64 {
        security::attacker_decrypts(m, mem, keys, SECRET) as u8 as f64
    };

    fig.push(
        "memory key revealed",
        vec![
            leak(&ma, &mem_a, &[]),
            leak(&mb, &mem_b, &[]),
            leak(&mc, &mem_c, &[]),
        ],
    );
    fig.push(
        "+ single fs key revealed",
        vec![
            leak(&ma, &mem_a, &[]),
            leak(&mb, &mem_b, &[fs_key]),
            leak(&mc, &mem_c, &[other_key]),
        ],
    );
    fig.push(
        "+ all file keys revealed",
        vec![
            leak(&ma, &mem_a, &[]),
            leak(&mb, &mem_b, &[fs_key]),
            leak(&mc, &mem_c, &[other_key, file_key]),
        ],
    );
    fig
}

/// Ablation: OTT lookup latency (the paper trades 1 cycle for 20 to save
/// power — how far can that go?).
pub fn ablation_ott(scale: f64) -> Figure {
    let mut fig = Figure::new(
        "Ablation: OTT lookup latency vs YCSB slowdown over baseline",
        vec!["slowdown".to_string()],
    );
    let n = scaled(8 * 1024, scale);
    let factory: Factory = Box::new(move || Box::new(Ycsb::new(n, n, 2)) as Box<dyn Workload>);
    let latencies = [1u64, 20, 100, 400];
    let mut cells = vec![Cell {
        label: "YCSB/baseline".to_string(),
        opts: MachineOpts::benchmark(),
        mode: SecurityMode::MemoryOnly,
        factory: &factory,
    }];
    for lat in latencies {
        let opts = MachineOpts::preset(Preset::Paper).ott_latency_cycles(lat).build();
        cells.push(Cell {
            label: format!("YCSB/ott-latency-{lat}"),
            opts,
            mode: SecurityMode::FsEncr,
            factory: &factory,
        });
    }
    let stats = run_cells(cells);
    let base = stats[0];
    for (i, lat) in latencies.iter().enumerate() {
        fig.push(
            format!("ott-latency-{lat}"),
            vec![stats[i + 1].cycles as f64 / base.cycles as f64],
        );
    }
    fig
}

/// Ablation: Osiris stop-loss period vs write-heavy overhead (persisting
/// counters more often costs writes; less often lengthens recovery).
pub fn ablation_osiris(scale: f64) -> Figure {
    let mut fig = Figure::new(
        "Ablation: Osiris stop-loss vs Overwrite-S (normalized to stop-loss 4)",
        vec!["slowdown".to_string(), "nvm writes".to_string()],
    );
    let n = scaled(4096, scale);
    let factory: Factory = Box::new(move || {
        Box::new(PmemKv::new(DbBench::Overwrite, 64, n, n, 2)) as Box<dyn Workload>
    });
    let stop_losses = [1u32, 2, 4, 8, 16];
    let mut cells = vec![Cell {
        label: "Overwrite-S/reference".to_string(),
        opts: MachineOpts::benchmark(),
        mode: SecurityMode::FsEncr,
        factory: &factory,
    }];
    for stop_loss in stop_losses {
        let opts = MachineOpts::preset(Preset::Paper).osiris_stop_loss(stop_loss).build();
        cells.push(Cell {
            label: format!("Overwrite-S/stop-loss-{stop_loss}"),
            opts,
            mode: SecurityMode::FsEncr,
            factory: &factory,
        });
    }
    let stats = run_cells(cells);
    let reference = stats[0];
    for (i, stop_loss) in stop_losses.iter().enumerate() {
        let r = stats[i + 1];
        fig.push(
            format!("stop-loss-{stop_loss}"),
            vec![
                r.cycles as f64 / reference.cycles as f64,
                r.nvm_writes as f64 / reference.nvm_writes.max(1) as f64,
            ],
        );
    }
    fig
}

/// Ablation: shared vs partitioned metadata cache (Section III-D floats
/// partitioning MECB/FECB/Merkle capacity; does it help or hurt?).
pub fn ablation_partition(scale: f64) -> Figure {
    let mut fig = Figure::new(
        "Ablation: metadata-cache partitioning (FsEncr slowdown over baseline security)",
        vec!["shared".to_string(), "partitioned".to_string()],
    );
    let n_large = scaled(3072, scale);
    let file = ((24 << 20) as f64 * scale.max(0.2)) as u64 / 4096 * 4096;
    let reads = scaled(400_000, scale);
    let factories: Vec<(String, Factory)> = vec![
        (
            "Fillrandom-L".to_string(),
            Box::new(move || {
                Box::new(PmemKv::new(DbBench::FillRandom, 4096, n_large, n_large, 2))
                    as Box<dyn Workload>
            }) as Factory,
        ),
        (
            "DAX-2".to_string(),
            Box::new(move || Box::new(DaxStride::new(128, file, reads)) as Box<dyn Workload>),
        ),
    ];
    let mut cells = Vec::new();
    for (name, factory) in &factories {
        for partitioned in [false, true] {
            let opts = MachineOpts::preset(Preset::Paper)
                .partition_metadata_cache(partitioned)
                .build();
            for mode in [SecurityMode::MemoryOnly, SecurityMode::FsEncr] {
                cells.push(Cell {
                    label: format!("{name}/partitioned-{partitioned}"),
                    opts,
                    mode,
                    factory,
                });
            }
        }
    }
    let stats = run_cells(cells);
    for (i, (name, _)) in factories.iter().enumerate() {
        let mut row = Vec::new();
        for p in 0..2 {
            let at = (i * 2 + p) * 2;
            row.push(stats[at + 1].cycles as f64 / stats[at].cycles as f64);
        }
        fig.push(name.clone(), row);
    }
    fig
}

/// Ablation: counter-mode vs direct (serialized) encryption — Section
/// II-C's justification for CTR mode.
pub fn ablation_direct(scale: f64) -> Figure {
    let mut fig = Figure::new(
        "Ablation: CTR vs direct encryption (normalized to ext4-dax)",
        vec!["ctr".to_string(), "direct".to_string()],
    );
    let file = ((24 << 20) as f64 * scale.max(0.2)) as u64 / 4096 * 4096;
    let reads = scaled(200_000, scale);
    let factories: Vec<(String, Factory)> = vec![
        (
            "DAX-1".to_string(),
            Box::new(move || Box::new(DaxStride::new(16, file, reads)) as Box<dyn Workload>) as Factory,
        ),
        (
            "Readrandom-S".to_string(),
            Box::new(move || {
                Box::new(PmemKv::new(DbBench::ReadRandom, 64, scaled(32768, scale), scaled(16384, scale), 2))
                    as Box<dyn Workload>
            }),
        ),
    ];
    let direct_opts = MachineOpts::preset(Preset::Paper).direct_encryption(true).build();
    let mut cells = Vec::new();
    for (name, factory) in &factories {
        cells.push(Cell {
            label: name.clone(),
            opts: MachineOpts::benchmark(),
            mode: SecurityMode::Unencrypted,
            factory,
        });
        cells.push(Cell {
            label: name.clone(),
            opts: MachineOpts::benchmark(),
            mode: SecurityMode::FsEncr,
            factory,
        });
        cells.push(Cell {
            label: format!("{name}/direct"),
            opts: direct_opts,
            mode: SecurityMode::FsEncr,
            factory,
        });
    }
    let stats = run_cells(cells);
    for (i, (name, _)) in factories.iter().enumerate() {
        let (dax, ctr, direct) = (stats[3 * i], stats[3 * i + 1], stats[3 * i + 2]);
        fig.push(
            name.clone(),
            vec![
                ctr.cycles as f64 / dax.cycles as f64,
                direct.cycles as f64 / dax.cycles as f64,
            ],
        );
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_matrix() {
        let fig = table1();
        // Row 1: only A falls.
        assert_eq!(fig.value("memory key revealed", "System A"), Some(1.0));
        assert_eq!(fig.value("memory key revealed", "System B"), Some(0.0));
        assert_eq!(fig.value("memory key revealed", "System C"), Some(0.0));
        // Row 2: A and B fall, C still stands.
        assert_eq!(fig.value("+ single fs key revealed", "System B"), Some(1.0));
        assert_eq!(fig.value("+ single fs key revealed", "System C"), Some(0.0));
        // Row 3: everything falls.
        assert_eq!(fig.value("+ all file keys revealed", "System C"), Some(1.0));
    }

    #[test]
    fn fig3_shows_software_overhead() {
        let fig = fig3(0.02);
        for (name, v) in &fig.rows {
            assert!(v[0] > 1.2, "{name}: software slowdown {v:?} too small");
        }
    }

    #[test]
    fn smoke_fig8_shapes() {
        let (slow, writes, reads) = fig8_9_10(0.01);
        for (name, v) in &slow.rows {
            assert!(v[0] > 0.9 && v[0] < 3.0, "{name} slowdown {v:?}");
        }
        // At smoke scale the absolute read/write counts are tiny, so the
        // ratios are noisy; just require them to be sane.
        for fig in [&writes, &reads] {
            for (name, v) in &fig.rows {
                assert!(v[0] > 0.2 && v[0] < 10.0, "{name} ratio {v:?} insane");
            }
        }
    }
}
