//! A scriptable command shell over the simulated machine — the backing
//! engine of the `fsenctl` binary.
//!
//! Commands take one line each; output is returned as text so the shell
//! is equally usable interactively, from scripts, and from tests.

use fsencr::machine::{Machine, MachineOpts, MapId, SecurityMode};
use fsencr::security;
use fsencr_fs::{AccessKind, FileHandle, GroupId, Mode, UserId};

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The shell: a machine plus the open-file table. A `BTreeMap` keeps any
/// listing of open files in deterministic (sorted) order.
pub struct Shell {
    machine: Machine,
    open: BTreeMap<String, (FileHandle, MapId)>,
}

impl std::fmt::Debug for Shell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shell")
            .field("open_files", &self.open.len())
            .finish_non_exhaustive()
    }
}

/// Outcome of one command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShellOutcome {
    /// Text to print.
    Output(String),
    /// The user asked to leave.
    Quit,
}

fn parse_u64(s: &str) -> Result<u64, String> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad number {s}: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad number {s}: {e}"))
    }
}

const HELP: &str = "\
commands:
  create <name> <uid> <gid> <octal-mode> [passphrase]   create a file
  open <name> <uid> [passphrase]                        open + mmap
  close <name>                                          munmap
  write <name> <offset> <text>                          write bytes
  read <name> <offset> <len>                            read bytes
  persist <name> <offset> <len>                         clwb + fence
  msync <name>                                          durable sync
  chmod <name> <octal-mode> <uid>                       change mode
  unlink <name> <uid>                                   delete + shred
  copy <src> <dst> <uid> <src-pass> <dst-pass>          copy through CPU
  rekey <name> <uid> <old-pass> <new-pass>              rotate file key
  ls | stat <name> | stats | mode                       inspect
  scan <text>                                           attacker media scan
  crash | recover | flush                               lifecycle
  lock | unlock                                         file-engine auth
  profile on [span-cap] | profile off                   cycle attribution
  profile | profile json                                show attribution
  help | quit";

impl Shell {
    /// Creates a shell around a fresh machine.
    pub fn new(mode: SecurityMode, opts: MachineOpts) -> Self {
        Shell {
            machine: Machine::new(opts, mode),
            open: BTreeMap::new(),
        }
    }

    /// The underlying machine (tests peek at it).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    fn handle_of(&self, name: &str) -> Result<(FileHandle, MapId), String> {
        self.open
            .get(name)
            .copied()
            .ok_or_else(|| format!("{name}: not open (use `open` first)"))
    }

    /// Executes one command line.
    pub fn exec(&mut self, line: &str) -> ShellOutcome {
        match self.try_exec(line) {
            Ok(out) => out,
            Err(msg) => ShellOutcome::Output(format!("error: {msg}")),
        }
    }

    fn try_exec(&mut self, line: &str) -> Result<ShellOutcome, String> {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Ok(ShellOutcome::Output(String::new()));
        };
        let args: Vec<&str> = parts.collect();
        let out = match (cmd, args.as_slice()) {
            ("help", _) => HELP.to_string(),
            ("quit" | "exit", _) => return Ok(ShellOutcome::Quit),
            ("mode", _) => format!("{}", self.machine.mode()),

            ("create", [name, uid, gid, mode, rest @ ..]) => {
                let user = UserId::new(parse_u64(uid)? as u32);
                let group = GroupId::new(parse_u64(gid)? as u32);
                let mode = Mode::new(
                    u16::from_str_radix(mode, 8).map_err(|e| format!("bad mode: {e}"))?,
                );
                let pass = rest.first().copied();
                let h = self
                    .machine
                    .create(user, group, name, mode, pass)
                    .map_err(|e| e.to_string())?;
                let map = self.machine.mmap(&h).map_err(|e| e.to_string())?;
                self.open.insert(name.to_string(), (h, map));
                format!(
                    "created {name} ({}, {}, {})",
                    h.ino,
                    h.group,
                    if h.fek.is_some() { "encrypted" } else { "plain" }
                )
            }
            ("open", [name, uid, rest @ ..]) => {
                let user = UserId::new(parse_u64(uid)? as u32);
                let pass = rest.first().copied();
                let h = self
                    .machine
                    .open(user, &[], name, AccessKind::Write, pass)
                    .map_err(|e| e.to_string())?;
                let map = self.machine.mmap(&h).map_err(|e| e.to_string())?;
                self.open.insert(name.to_string(), (h, map));
                format!("opened {name} ({})", h.ino)
            }
            ("close", [name]) => {
                let (_, map) = self.handle_of(name)?;
                self.machine.munmap(0, map).map_err(|e| e.to_string())?;
                self.open.remove(*name);
                format!("closed {name}")
            }
            ("write", [name, offset, text @ ..]) if !text.is_empty() => {
                let (_, map) = self.handle_of(name)?;
                let offset = parse_u64(offset)?;
                let data = text.join(" ");
                self.machine
                    .write(0, map, offset, data.as_bytes())
                    .map_err(|e| e.to_string())?;
                format!("wrote {} bytes at {offset}", data.len())
            }
            ("read", [name, offset, len]) => {
                let (_, map) = self.handle_of(name)?;
                let offset = parse_u64(offset)?;
                let len = parse_u64(len)? as usize;
                let mut buf = vec![0u8; len.min(4096)];
                self.machine
                    .read(0, map, offset, &mut buf)
                    .map_err(|e| e.to_string())?;
                match std::str::from_utf8(&buf) {
                    Ok(s) if s.chars().all(|c| !c.is_control() || c == '\n') => s.to_string(),
                    _ => {
                        let mut hex = String::new();
                        for b in &buf {
                            let _ = write!(hex, "{b:02x}");
                        }
                        hex
                    }
                }
            }
            ("persist", [name, offset, len]) => {
                let (_, map) = self.handle_of(name)?;
                self.machine
                    .persist(0, map, parse_u64(offset)?, parse_u64(len)?)
                    .map_err(|e| e.to_string())?;
                "persisted".to_string()
            }
            ("msync", [name]) => {
                let (_, map) = self.handle_of(name)?;
                self.machine.msync(0, map, 0, 0).map_err(|e| e.to_string())?;
                "synced".to_string()
            }
            ("chmod", [name, mode, uid]) => {
                let user = UserId::new(parse_u64(uid)? as u32);
                let mode = Mode::new(
                    u16::from_str_radix(mode, 8).map_err(|e| format!("bad mode: {e}"))?,
                );
                self.machine.chmod(user, name, mode).map_err(|e| e.to_string())?;
                format!("{name} -> {mode}")
            }
            ("unlink", [name, uid]) => {
                let user = UserId::new(parse_u64(uid)? as u32);
                self.open.remove(*name);
                self.machine.unlink(user, name).map_err(|e| e.to_string())?;
                format!("unlinked and shredded {name}")
            }
            ("copy", [src, dst, uid, src_pass, dst_pass]) => {
                let user = UserId::new(parse_u64(uid)? as u32);
                self.machine
                    .copy_file(0, user, &[], src, dst, Some(src_pass), Some(dst_pass))
                    .map_err(|e| e.to_string())?;
                format!("copied {src} -> {dst}")
            }
            ("rekey", [name, uid, old, new]) => {
                let user = UserId::new(parse_u64(uid)? as u32);
                self.machine
                    .rekey(user, name, old, new)
                    .map_err(|e| e.to_string())?;
                format!("rotated key of {name}")
            }
            ("ls", _) => {
                let mut out = String::new();
                for (name, ino) in self.machine.fs().list() {
                    let _ = writeln!(out, "{ino}  {name}");
                }
                out.trim_end().to_string()
            }
            ("stat", [name]) => {
                let inode = self
                    .machine
                    .fs()
                    .stat(name)
                    .ok_or_else(|| format!("{name}: no such file"))?;
                format!(
                    "{} owner={} group={} mode={} size={} encrypted={}",
                    inode.ino(),
                    inode.owner(),
                    inode.group(),
                    inode.mode(),
                    inode.size(),
                    inode.is_encrypted()
                )
            }
            ("stats", _) => {
                let s = self.machine.measurement();
                format!(
                    "cycles={} nvm_reads={} nvm_writes={} meta_hit={:.1}% ott={}h/{}m file_accesses={} read_p50={} read_p99={}",
                    s.cycles,
                    s.nvm_reads,
                    s.nvm_writes,
                    100.0 * s.meta_hit_rate,
                    s.ott_hits,
                    s.ott_misses,
                    s.file_accesses,
                    s.read_p50,
                    s.read_p99
                )
            }
            ("scan", text @ [_, ..]) => {
                let needle = text.join(" ");
                format!(
                    "plaintext `{needle}` on media: {}",
                    security::media_contains(&self.machine, needle.as_bytes())
                )
            }
            ("crash", _) => {
                self.open.clear();
                self.machine.crash();
                "crashed (volatile state lost; mappings closed)".to_string()
            }
            ("recover", _) => {
                let r = self.machine.recover();
                format!(
                    "recovered: {} clean, {} repaired, {} unrecoverable",
                    r.clean, r.repaired, r.unrecoverable
                )
            }
            ("flush", _) => {
                self.machine.shutdown_flush().map_err(|e| e.to_string())?;
                "flushed".to_string()
            }
            ("lock", _) => {
                self.machine.lock_file_engine();
                "file engine locked".to_string()
            }
            ("unlock", _) => {
                self.machine.unlock_file_engine();
                "file engine unlocked".to_string()
            }
            ("profile", ["on", rest @ ..]) => {
                let cap = match rest.first() {
                    Some(v) => parse_u64(v)? as usize,
                    None => 4096,
                };
                self.machine.enable_observer(cap);
                format!("observer enabled (span capacity {cap})")
            }
            ("profile", ["off"]) => {
                self.machine.disable_observer();
                "observer disabled".to_string()
            }
            ("profile", ["json"]) => self.machine.observer().to_json(),
            ("profile", []) => {
                let obs = self.machine.observer();
                if !obs.is_enabled() {
                    "observer disabled (use `profile on`)".to_string()
                } else {
                    let mut out = String::new();
                    for (k, v) in obs.metrics() {
                        let _ = writeln!(out, "{k:<32} {v}");
                    }
                    let _ = write!(
                        out,
                        "spans: {} recorded, {} dropped",
                        obs.spans().count(),
                        obs.spans_dropped()
                    );
                    out
                }
            }
            _ => format!("unknown or malformed command: {line} (try `help`)"),
        };
        Ok(ShellOutcome::Output(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell() -> Shell {
        Shell::new(SecurityMode::FsEncr, MachineOpts::small_test())
    }

    fn out(shell: &mut Shell, cmd: &str) -> String {
        match shell.exec(cmd) {
            ShellOutcome::Output(s) => s,
            ShellOutcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut sh = shell();
        let created = out(&mut sh, "create notes 1 1 600 secret-pw");
        assert!(created.contains("encrypted"), "{created}");
        out(&mut sh, "write notes 0 hello shell");
        assert_eq!(out(&mut sh, "read notes 0 11"), "hello shell");
        assert_eq!(out(&mut sh, "persist notes 0 11"), "persisted");
    }

    #[test]
    fn scan_and_lifecycle() {
        let mut sh = shell();
        out(&mut sh, "create f 1 1 600 pw");
        out(&mut sh, "write f 0 SUPERSECRET");
        out(&mut sh, "persist f 0 11");
        out(&mut sh, "flush");
        assert!(out(&mut sh, "scan SUPERSECRET").ends_with("false"));
        let rec = out(&mut sh, "recover");
        assert!(rec.contains("0 unrecoverable"), "{rec}");
    }

    #[test]
    fn crash_closes_mappings() {
        let mut sh = shell();
        out(&mut sh, "create f 1 1 600 pw");
        out(&mut sh, "write f 0 x");
        out(&mut sh, "crash");
        let err = out(&mut sh, "write f 0 y");
        assert!(err.contains("not open"), "{err}");
        // reopen after recovery
        out(&mut sh, "recover");
        let opened = out(&mut sh, "open f 1 pw");
        assert!(opened.contains("opened"), "{opened}");
    }

    #[test]
    fn permission_errors_surface() {
        let mut sh = shell();
        out(&mut sh, "create priv 1 1 600 pw");
        let err = out(&mut sh, "open priv 2 pw");
        assert!(err.contains("permission denied"), "{err}");
        let err = out(&mut sh, "open priv 1 wrong");
        assert!(err.contains("passphrase"), "{err}");
    }

    #[test]
    fn ls_stat_stats_mode() {
        let mut sh = shell();
        out(&mut sh, "create a 1 1 640 pw");
        out(&mut sh, "create b 1 2 600");
        let ls = out(&mut sh, "ls");
        assert!(ls.contains("a") && ls.contains("b"));
        let stat = out(&mut sh, "stat a");
        assert!(stat.contains("mode=640") && stat.contains("encrypted=true"), "{stat}");
        assert!(out(&mut sh, "stats").contains("cycles="));
        assert_eq!(out(&mut sh, "mode"), "fsencr");
    }

    #[test]
    fn copy_and_rekey() {
        let mut sh = shell();
        out(&mut sh, "create src 1 1 600 p1");
        out(&mut sh, "write src 0 copy me");
        out(&mut sh, "persist src 0 7");
        let copied = out(&mut sh, "copy src dst 1 p1 p2");
        assert!(copied.contains("copied"), "{copied}");
        out(&mut sh, "open dst 1 p2");
        assert_eq!(out(&mut sh, "read dst 0 7"), "copy me");
        let rk = out(&mut sh, "rekey src 1 p1 p3");
        assert!(rk.contains("rotated"), "{rk}");
    }

    #[test]
    fn lock_unlock_and_unknown() {
        let mut sh = shell();
        assert!(out(&mut sh, "lock").contains("locked"));
        assert!(out(&mut sh, "unlock").contains("unlocked"));
        assert!(out(&mut sh, "frobnicate").contains("unknown"));
        assert!(matches!(sh.exec("quit"), ShellOutcome::Quit));
    }

    #[test]
    fn profile_command_toggles_attribution() {
        let mut sh = shell();
        assert!(out(&mut sh, "profile").contains("disabled"));
        assert!(out(&mut sh, "profile on 64").contains("span capacity 64"));
        out(&mut sh, "create f 1 1 600 pw");
        out(&mut sh, "write f 0 attribution please");
        out(&mut sh, "persist f 0 18");
        let text = out(&mut sh, "profile");
        assert!(text.contains("ctrl/write/total_cycles"), "{text}");
        assert!(text.contains("spans:"), "{text}");
        let json = out(&mut sh, "profile json");
        assert!(json.contains("\"metrics\""), "{json}");
        assert!(out(&mut sh, "profile off").contains("disabled"));
    }

    #[test]
    fn unlink_shreds() {
        let mut sh = shell();
        out(&mut sh, "create t 1 1 600 pw");
        out(&mut sh, "write t 0 GONE-SOON");
        out(&mut sh, "persist t 0 9");
        out(&mut sh, "unlink t 1");
        assert!(out(&mut sh, "scan GONE-SOON").ends_with("false"));
        assert!(out(&mut sh, "stat t").contains("no such file"));
    }
}
