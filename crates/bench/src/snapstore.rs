//! Content-addressed store of post-setup machine snapshots.
//!
//! The second warm-start layer under the experiment harness. The cell
//! cache ([`crate::cellcache`]) memoizes *finished* cell results; this
//! store memoizes the expensive part of a cell that still has to run —
//! the setup phase (file creation, pool prefaulting, KV preloads). A
//! cell whose measured-phase parameters changed misses the cell cache
//! but can still restore its post-setup machine image and skip straight
//! to measurement, because snapshots are keyed by
//! [`setup_spec`](fsencr_workloads::driver::Workload::setup_spec) — the
//! setup-only parameter subset — rather than the full `spec()`. One
//! snapshot therefore serves every scale of a cell, and setups shared
//! between workloads (DAX-1/DAX-2; the four preloading PMEMKV benches)
//! are simulated once.
//!
//! The snapshot round-trip theorem (`snapshot_roundtrip` suite) plus the
//! warm-start equivalence suite (`warm_start` in `fsencr-workloads`)
//! guarantee a restored machine measures bit-identically to one whose
//! setup ran in-process, so figures stay byte-identical whichever path
//! produced them.
//!
//! Layout: a directory (`CACHE_snapshots/` next to `CACHE_cells.json`)
//! holding one `<key>.snap` file of raw `fsencr-snap/1` bytes per entry.
//! The key is a SHA-256 over the same material as a cell key with the
//! full spec replaced by `setup_spec`, so the crate-version salt
//! invalidates every entry on any code change; the snapshot codec's
//! chained digests and config fingerprint reject anything stale or
//! corrupt that slips through. Like the cell cache, the store is an
//! accelerator, never a dependency: every failure degrades to a cold
//! setup with identical output.

use std::path::PathBuf;
use std::sync::Mutex;

use fsencr::machine::{MachineOpts, SecurityMode};

use crate::cellcache::cell_key;

/// The content-addressed key of one post-setup snapshot.
///
/// Reuses the cell-key material (salt, mode, full `MachineOpts` Debug
/// rendering) with a fixed `"snapshot"` label and the workload's
/// `setup_spec` in the spec slot.
pub fn snap_key(mode: SecurityMode, opts: &MachineOpts, setup_spec: &str) -> String {
    cell_key("snapshot", mode, opts, setup_spec)
}

struct Store {
    dir: PathBuf,
    hits: u64,
    misses: u64,
    stores: u64,
}

static STORE: Mutex<Option<Store>> = Mutex::new(None);

fn with_store<T>(f: impl FnOnce(&mut Option<Store>) -> T) -> T {
    let mut guard = STORE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    f(&mut guard)
}

/// Enables the store backed by directory `dir` (created on first
/// write), or disables it with `None`.
pub fn configure(dir: Option<PathBuf>) {
    with_store(|store| {
        *store = dir.map(|dir| Store { dir, hits: 0, misses: 0, stores: 0 });
    });
}

/// Whether a store is currently configured.
pub fn is_enabled() -> bool {
    with_store(|store| store.is_some())
}

/// `(hits, misses, stores)` since [`configure`].
pub fn counters() -> (u64, u64, u64) {
    with_store(|store| store.as_ref().map_or((0, 0, 0), |s| (s.hits, s.misses, s.stores)))
}

fn entry_path(dir: &std::path::Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.snap"))
}

/// Fetches the snapshot bytes for `key`, if the store is enabled and
/// holds them. Counts a hit or miss.
pub fn lookup(key: &str) -> Option<Vec<u8>> {
    with_store(|store| {
        let s = store.as_mut()?;
        match std::fs::read(entry_path(&s.dir, key)) {
            Ok(bytes) => {
                s.hits += 1;
                Some(bytes)
            }
            Err(_) => {
                s.misses += 1;
                None
            }
        }
    })
}

/// Records freshly captured snapshot bytes under `key` (no-op when
/// disabled; write failures are swallowed — accelerator, not
/// dependency). Entries are written immediately, so a later cell in the
/// same run that shares the setup already hits.
pub fn store(key: &str, bytes: &[u8]) {
    with_store(|store| {
        if let Some(s) = store.as_mut() {
            if std::fs::create_dir_all(&s.dir).is_ok()
                && std::fs::write(entry_path(&s.dir, key), bytes).is_ok()
            {
                s.stores += 1;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The store is process-global; serialize tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("snapstore-{tag}-{}", std::process::id()))
    }

    #[test]
    fn keys_separate_every_input() {
        let opts = MachineOpts::small_test();
        let base = snap_key(SecurityMode::FsEncr, &opts, "w-setup(n=1)");
        assert_eq!(base.len(), 64);
        assert_ne!(base, snap_key(SecurityMode::MemoryOnly, &opts, "w-setup(n=1)"));
        assert_ne!(base, snap_key(SecurityMode::FsEncr, &opts, "w-setup(n=2)"));
        // And snapshot keys can never collide with cell-result keys for
        // the same material (distinct label).
        assert_ne!(base, cell_key("cell", SecurityMode::FsEncr, &opts, "w-setup(n=1)"));
    }

    #[test]
    fn round_trips_bytes_and_counts() {
        let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = temp_dir("rt");
        std::fs::remove_dir_all(&dir).ok();
        configure(Some(dir.clone()));
        assert!(is_enabled());
        assert_eq!(lookup("missing"), None);
        store("k1", b"snapshot-bytes");
        assert_eq!(lookup("k1").as_deref(), Some(&b"snapshot-bytes"[..]));
        assert_eq!(counters(), (1, 1, 1));
        configure(None);
        assert!(!is_enabled());
        assert_eq!(lookup("k1"), None, "disabled store never serves");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_store_is_inert() {
        let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        configure(None);
        store("k", b"bytes");
        assert_eq!(lookup("k"), None);
        assert_eq!(counters(), (0, 0, 0));
    }
}
