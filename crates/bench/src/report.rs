//! Wall-clock accounting for experiment cells and the `harness bench`
//! report (`BENCH_harness.json`).
//!
//! Every cell the experiment engine runs (see [`crate::experiments`])
//! records its wall-clock time and headline simulation counters here. The
//! `harness bench` subcommand drains these records after a timed run and
//! serializes them — together with an AES fast-path microbenchmark and the
//! serial-vs-parallel engine comparison — as a small, dependency-free JSON
//! document. Schema:
//!
//! ```json
//! {
//!   "schema": "fsencr-bench-harness/5",
//!   "host_parallelism": 4,
//!   "jobs": 4,
//!   "scale": 0.05,
//!   "aes": {
//!     "ttable_blocks_per_sec": 1.0e7,
//!     "reference_blocks_per_sec": 2.0e6,
//!     "speedup": 5.0
//!   },
//!   "digest": {
//!     "line_hashes_per_sec": 8.0e6,
//!     "streaming_hashes_per_sec": 4.0e6,
//!     "speedup": 2.0
//!   },
//!   "pad": {
//!     "cached_pads_per_sec": 3.0e6,
//!     "uncached_pads_per_sec": 1.0e6,
//!     "speedup": 3.0
//!   },
//!   "metadata": {
//!     "memo_digests_per_sec": 2.0e7,
//!     "rehash_digests_per_sec": 2.0e6,
//!     "speedup": 10.0,
//!     "memo_persists_per_sec": 1.0e6,
//!     "rehash_persists_per_sec": 0.7e6,
//!     "persist_speedup": 1.43
//!   },
//!   "batch": {
//!     "quad_pads_per_sec": 8.0e6,
//!     "single_pads_per_sec": 4.0e6,
//!     "pad_speedup": 2.0,
//!     "batched_reads_per_sec": 2.0e5,
//!     "looped_reads_per_sec": 1.5e5,
//!     "read_speedup": 1.33
//!   },
//!   "merkle": {
//!     "lane_digests_per_sec": 1.6e7,
//!     "oneshot_digests_per_sec": 8.0e6,
//!     "lanes_speedup": 2.0,
//!     "batched_verifies_per_sec": 4.0e5,
//!     "looped_verifies_per_sec": 2.0e5,
//!     "verify_speedup": 2.0,
//!     "batched_persists_per_sec": 3.0e5,
//!     "looped_persists_per_sec": 2.0e5,
//!     "persist_speedup": 1.5
//!   },
//!   "snapshot": {
//!     "cold_setup_wall_s": 0.8,
//!     "restore_wall_s": 0.1,
//!     "speedup": 8.0,
//!     "snapshot_bytes": 1048576
//!   },
//!   "engine": {
//!     "serial_wall_s": 10.0,
//!     "parallel_wall_s": 3.0,
//!     "speedup": 3.33,
//!     "cells": [
//!       {
//!         "workload": "YCSB", "mode": "fsencr", "wall_s": 0.5,
//!         "sim_cycles": 123, "nvm_lines": 456,
//!         "sim_lines_per_sec": 912.0
//!       }
//!     ]
//!   }
//! }
//! ```

use std::sync::Mutex;
use std::time::Duration;

use fsencr::machine::{RunStats, SecurityMode};
use fsencr_sim::stats::per_second;

/// One completed experiment cell: a single workload × mode simulation.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// Workload label (row name the figure uses).
    pub workload: String,
    /// Security mode the cell ran under.
    pub mode: String,
    /// Host wall-clock the simulation took.
    pub wall: Duration,
    /// Simulated cycles covered by the measurement window.
    pub sim_cycles: u64,
    /// Simulated NVM line transfers (reads + writes).
    pub nvm_lines: u64,
}

impl CellRecord {
    /// Simulated NVM lines processed per host second — the engine's
    /// simulation throughput for this cell.
    pub fn sim_lines_per_sec(&self) -> f64 {
        per_second(self.nvm_lines, self.wall)
    }
}

static RECORDS: Mutex<Vec<CellRecord>> = Mutex::new(Vec::new());

/// Appends one cell record (called by the experiment engine).
pub(crate) fn record_cell(workload: &str, mode: SecurityMode, wall: Duration, stats: &RunStats) {
    RECORDS.lock().expect("record lock poisoned").push(CellRecord {
        workload: workload.to_string(),
        mode: mode.to_string(),
        wall,
        sim_cycles: stats.cycles,
        nvm_lines: stats.nvm_reads + stats.nvm_writes,
    });
}

/// Drains every cell recorded since the previous call (records are kept
/// in completion order; sort before relying on ordering).
pub fn take_cell_records() -> Vec<CellRecord> {
    std::mem::take(&mut RECORDS.lock().expect("record lock poisoned"))
}

/// AES microbenchmark results: T-table hot path vs byte-wise reference.
#[derive(Debug, Clone, Copy)]
pub struct AesThroughput {
    /// `Aes128::encrypt_block` blocks per second.
    pub ttable_blocks_per_sec: f64,
    /// `Aes128::encrypt_block_ref` blocks per second.
    pub reference_blocks_per_sec: f64,
}

impl AesThroughput {
    /// Fast path over reference speedup.
    pub fn speedup(&self) -> f64 {
        if self.reference_blocks_per_sec <= 0.0 {
            0.0
        } else {
            self.ttable_blocks_per_sec / self.reference_blocks_per_sec
        }
    }
}

/// Line-digest microbenchmark: the one-shot 64-byte fast path against
/// the streaming hasher it bypasses.
#[derive(Debug, Clone, Copy)]
pub struct DigestThroughput {
    /// `sha256_line` hashes per second.
    pub line_hashes_per_sec: f64,
    /// Streaming `sha256` hashes of the same 64-byte input per second.
    pub streaming_hashes_per_sec: f64,
}

impl DigestThroughput {
    /// Fast path over streaming speedup.
    pub fn speedup(&self) -> f64 {
        if self.streaming_hashes_per_sec <= 0.0 {
            0.0
        } else {
            self.line_hashes_per_sec / self.streaming_hashes_per_sec
        }
    }
}

/// CTR pad-generation microbenchmark: reusing a cached AES key schedule
/// against re-expanding the key for every 64-byte pad.
#[derive(Debug, Clone, Copy)]
pub struct PadThroughput {
    /// `line_pad_with` (cached schedule) pads per second.
    pub cached_pads_per_sec: f64,
    /// `line_pad` (fresh key expansion) pads per second.
    pub uncached_pads_per_sec: f64,
}

impl PadThroughput {
    /// Cached over uncached speedup.
    pub fn speedup(&self) -> f64 {
        if self.uncached_pads_per_sec <= 0.0 {
            0.0
        } else {
            self.cached_pads_per_sec / self.uncached_pads_per_sec
        }
    }
}

/// Metadata-system microbenchmark, two granularities of the same memoized
/// line-digest path. The *digest* pair times `trusted_line_digest` — the
/// exact call parent-digest write-backs make — with the memo serving hits
/// against the memo disabled (every call re-hashes). The *persist* pair
/// times full `persist_block` round trips of unchanged content, where the
/// digest saving is diluted by the simulated NVM write and cache
/// bookkeeping that surround it.
#[derive(Debug, Clone, Copy)]
pub struct MetaThroughput {
    /// `trusted_line_digest` calls per second with the memo serving hits.
    pub memo_digests_per_sec: f64,
    /// The same calls with the memo disabled (every call re-hashes).
    pub rehash_digests_per_sec: f64,
    /// `persist_block` calls per second with the digest memo enabled.
    pub memo_persists_per_sec: f64,
    /// The same call sequence with the memo disabled (every parent bump
    /// re-hashes the line).
    pub rehash_persists_per_sec: f64,
}

impl MetaThroughput {
    /// Memo-hit over re-hash speedup on the line-digest path itself.
    pub fn speedup(&self) -> f64 {
        if self.rehash_digests_per_sec <= 0.0 {
            0.0
        } else {
            self.memo_digests_per_sec / self.rehash_digests_per_sec
        }
    }

    /// Memoized over re-hashing speedup of the end-to-end persist path.
    pub fn persist_speedup(&self) -> f64 {
        if self.rehash_persists_per_sec <= 0.0 {
            0.0
        } else {
            self.memo_persists_per_sec / self.rehash_persists_per_sec
        }
    }
}

/// Batched-datapath microbenchmark: the two host-side wins of the
/// page-batched fast path. The *pad* pair times `ctr_pads_n` four lanes
/// at a time against one pad per call over the same cached schedule. The
/// *read* pair times a full-page `MemoryController::read_lines` region
/// read against the equivalent per-line `read_line` loop — same
/// simulated cycles, different host work (counter-block re-parses and
/// schedule-cache probes amortized across the run).
#[derive(Debug, Clone, Copy)]
pub struct BatchThroughput {
    /// `ctr_pads_n` pads per second, four lanes per call.
    pub quad_pads_per_sec: f64,
    /// `ctr_pads_n` pads per second, one lane per call.
    pub single_pads_per_sec: f64,
    /// `read_lines` lines per second over a 64-line page.
    pub batched_reads_per_sec: f64,
    /// Looped `read_line` lines per second over the same page.
    pub looped_reads_per_sec: f64,
}

impl BatchThroughput {
    /// Four-lane over single-lane pad-generation speedup.
    pub fn pad_speedup(&self) -> f64 {
        if self.single_pads_per_sec <= 0.0 {
            0.0
        } else {
            self.quad_pads_per_sec / self.single_pads_per_sec
        }
    }

    /// Region-read over per-line-loop speedup.
    pub fn read_speedup(&self) -> f64 {
        if self.looped_reads_per_sec <= 0.0 {
            0.0
        } else {
            self.batched_reads_per_sec / self.looped_reads_per_sec
        }
    }
}

/// Batched Merkle-engine microbenchmark: the three host-side wins of the
/// shared-ancestor batch planner. The *lane* pair times the interleaved
/// [`digest8_lines4`](fsencr_crypto::digest8_lines4) kernel against the
/// same four digests via one-shot calls. The *verify* pair times a
/// 64-line `MetadataSystem::verify_lines` region from cold post-crash
/// state against the equivalent chained `read_block` loop — identical
/// simulated cycles, but the loop re-hashes every shared ancestor per
/// climb while the batch plans each once. The *persist* pair times
/// `persist_blocks` over freshly dirtied leaves against the per-line
/// `persist_block` loop.
#[derive(Debug, Clone, Copy)]
pub struct MerkleThroughput {
    /// `digest8_lines4` digests per second (four lanes per call).
    pub lane_digests_per_sec: f64,
    /// The same digests via one-shot `digest8_line` calls, per second.
    pub oneshot_digests_per_sec: f64,
    /// `verify_lines` lines per second over cold 64-line regions.
    pub batched_verifies_per_sec: f64,
    /// Chained per-line `read_block` lines per second, same regions.
    pub looped_verifies_per_sec: f64,
    /// `persist_blocks` lines per second over dirty 64-line regions.
    pub batched_persists_per_sec: f64,
    /// Per-line `persist_block` lines per second, same regions.
    pub looped_persists_per_sec: f64,
}

impl MerkleThroughput {
    /// Four-lane over one-shot digest speedup.
    pub fn lanes_speedup(&self) -> f64 {
        if self.oneshot_digests_per_sec <= 0.0 {
            0.0
        } else {
            self.lane_digests_per_sec / self.oneshot_digests_per_sec
        }
    }

    /// Batched over per-line region-verify speedup.
    pub fn verify_speedup(&self) -> f64 {
        if self.looped_verifies_per_sec <= 0.0 {
            0.0
        } else {
            self.batched_verifies_per_sec / self.looped_verifies_per_sec
        }
    }

    /// Batched over per-line region-persist speedup.
    pub fn persist_speedup(&self) -> f64 {
        if self.looped_persists_per_sec <= 0.0 {
            0.0
        } else {
            self.batched_persists_per_sec / self.looped_persists_per_sec
        }
    }
}

/// Snapshot-subsystem microbenchmark: the warm-start win. The *cold*
/// side simulates a representative setup phase in process; the *restore*
/// side rebuilds the identical machine from its `fsencr-snap/1` image.
/// Both machines are bit-identical afterwards (the snapshot round-trip
/// theorem), so the wall-clock gap is pure saved simulation.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotThroughput {
    /// Wall-clock of the in-process setup simulation.
    pub cold_setup_wall: Duration,
    /// Wall-clock of restoring the equivalent snapshot.
    pub restore_wall: Duration,
    /// Encoded snapshot size in bytes.
    pub snapshot_bytes: u64,
}

impl SnapshotThroughput {
    /// Cold-setup over restore wall-clock speedup.
    pub fn speedup(&self) -> f64 {
        let r = self.restore_wall.as_secs_f64();
        if r <= 0.0 {
            0.0
        } else {
            self.cold_setup_wall.as_secs_f64() / r
        }
    }
}

/// Everything `harness bench` measures.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Worker threads the parallel run used.
    pub jobs: usize,
    /// `std::thread::available_parallelism` on this host.
    pub host_parallelism: usize,
    /// Experiment scale the engine comparison ran at.
    pub scale: f64,
    /// AES fast-path microbenchmark.
    pub aes: AesThroughput,
    /// Line-digest fast-path microbenchmark.
    pub digest: DigestThroughput,
    /// CTR pad schedule-cache microbenchmark.
    pub pad: PadThroughput,
    /// Metadata-system digest-memo microbenchmark.
    pub meta: MetaThroughput,
    /// Batched-datapath microbenchmark.
    pub batch: BatchThroughput,
    /// Batched Merkle-engine microbenchmark.
    pub merkle: MerkleThroughput,
    /// Snapshot restore-vs-setup microbenchmark.
    pub snap: SnapshotThroughput,
    /// Wall-clock of the serial (`jobs = 1`) engine run.
    pub serial_wall: Duration,
    /// Wall-clock of the parallel engine run.
    pub parallel_wall: Duration,
    /// Per-cell records from the parallel run.
    pub cells: Vec<CellRecord>,
}

impl BenchReport {
    /// Serial over parallel wall-clock speedup.
    pub fn engine_speedup(&self) -> f64 {
        let p = self.parallel_wall.as_secs_f64();
        if p <= 0.0 {
            0.0
        } else {
            self.serial_wall.as_secs_f64() / p
        }
    }

    /// Renders the report as the `BENCH_harness.json` document.
    pub fn to_json(&self) -> String {
        let mut cells = String::new();
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                cells.push_str(",\n");
            }
            cells.push_str(&format!(
                "      {{\"workload\": {}, \"mode\": {}, \"wall_s\": {}, \"sim_cycles\": {}, \"nvm_lines\": {}, \"sim_lines_per_sec\": {}}}",
                json_string(&c.workload),
                json_string(&c.mode),
                json_f64(c.wall.as_secs_f64()),
                c.sim_cycles,
                c.nvm_lines,
                json_f64(c.sim_lines_per_sec()),
            ));
        }
        format!(
            "{{\n  \"schema\": \"fsencr-bench-harness/5\",\n  \"host_parallelism\": {},\n  \"jobs\": {},\n  \"scale\": {},\n  \"aes\": {{\n    \"ttable_blocks_per_sec\": {},\n    \"reference_blocks_per_sec\": {},\n    \"speedup\": {}\n  }},\n  \"digest\": {{\n    \"line_hashes_per_sec\": {},\n    \"streaming_hashes_per_sec\": {},\n    \"speedup\": {}\n  }},\n  \"pad\": {{\n    \"cached_pads_per_sec\": {},\n    \"uncached_pads_per_sec\": {},\n    \"speedup\": {}\n  }},\n  \"metadata\": {{\n    \"memo_digests_per_sec\": {},\n    \"rehash_digests_per_sec\": {},\n    \"speedup\": {},\n    \"memo_persists_per_sec\": {},\n    \"rehash_persists_per_sec\": {},\n    \"persist_speedup\": {}\n  }},\n  \"batch\": {{\n    \"quad_pads_per_sec\": {},\n    \"single_pads_per_sec\": {},\n    \"pad_speedup\": {},\n    \"batched_reads_per_sec\": {},\n    \"looped_reads_per_sec\": {},\n    \"read_speedup\": {}\n  }},\n  \"merkle\": {{\n    \"lane_digests_per_sec\": {},\n    \"oneshot_digests_per_sec\": {},\n    \"lanes_speedup\": {},\n    \"batched_verifies_per_sec\": {},\n    \"looped_verifies_per_sec\": {},\n    \"verify_speedup\": {},\n    \"batched_persists_per_sec\": {},\n    \"looped_persists_per_sec\": {},\n    \"persist_speedup\": {}\n  }},\n  \"snapshot\": {{\n    \"cold_setup_wall_s\": {},\n    \"restore_wall_s\": {},\n    \"speedup\": {},\n    \"snapshot_bytes\": {}\n  }},\n  \"engine\": {{\n    \"serial_wall_s\": {},\n    \"parallel_wall_s\": {},\n    \"speedup\": {},\n    \"cells\": [\n{}\n    ]\n  }}\n}}\n",
            self.host_parallelism,
            self.jobs,
            json_f64(self.scale),
            json_f64(self.aes.ttable_blocks_per_sec),
            json_f64(self.aes.reference_blocks_per_sec),
            json_f64(self.aes.speedup()),
            json_f64(self.digest.line_hashes_per_sec),
            json_f64(self.digest.streaming_hashes_per_sec),
            json_f64(self.digest.speedup()),
            json_f64(self.pad.cached_pads_per_sec),
            json_f64(self.pad.uncached_pads_per_sec),
            json_f64(self.pad.speedup()),
            json_f64(self.meta.memo_digests_per_sec),
            json_f64(self.meta.rehash_digests_per_sec),
            json_f64(self.meta.speedup()),
            json_f64(self.meta.memo_persists_per_sec),
            json_f64(self.meta.rehash_persists_per_sec),
            json_f64(self.meta.persist_speedup()),
            json_f64(self.batch.quad_pads_per_sec),
            json_f64(self.batch.single_pads_per_sec),
            json_f64(self.batch.pad_speedup()),
            json_f64(self.batch.batched_reads_per_sec),
            json_f64(self.batch.looped_reads_per_sec),
            json_f64(self.batch.read_speedup()),
            json_f64(self.merkle.lane_digests_per_sec),
            json_f64(self.merkle.oneshot_digests_per_sec),
            json_f64(self.merkle.lanes_speedup()),
            json_f64(self.merkle.batched_verifies_per_sec),
            json_f64(self.merkle.looped_verifies_per_sec),
            json_f64(self.merkle.verify_speedup()),
            json_f64(self.merkle.batched_persists_per_sec),
            json_f64(self.merkle.looped_persists_per_sec),
            json_f64(self.merkle.persist_speedup()),
            json_f64(self.snap.cold_setup_wall.as_secs_f64()),
            json_f64(self.snap.restore_wall.as_secs_f64()),
            json_f64(self.snap.speedup()),
            self.snap.snapshot_bytes,
            json_f64(self.serial_wall.as_secs_f64()),
            json_f64(self.parallel_wall.as_secs_f64()),
            json_f64(self.engine_speedup()),
            cells,
        )
    }
}

/// Formats an `f64` as a JSON number (finite; NaN/inf degrade to 0).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Enough digits to round-trip the interesting range without
        // printing `1e20`-style exponents JSON consumers dislike least.
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            jobs: 4,
            host_parallelism: 8,
            scale: 0.05,
            aes: AesThroughput {
                ttable_blocks_per_sec: 4.0e6,
                reference_blocks_per_sec: 1.0e6,
            },
            digest: DigestThroughput {
                line_hashes_per_sec: 8.0e6,
                streaming_hashes_per_sec: 4.0e6,
            },
            pad: PadThroughput {
                cached_pads_per_sec: 3.0e6,
                uncached_pads_per_sec: 1.0e6,
            },
            meta: MetaThroughput {
                memo_digests_per_sec: 2.0e7,
                rehash_digests_per_sec: 2.0e6,
                memo_persists_per_sec: 1.0e6,
                rehash_persists_per_sec: 0.8e6,
            },
            batch: BatchThroughput {
                quad_pads_per_sec: 8.0e6,
                single_pads_per_sec: 4.0e6,
                batched_reads_per_sec: 3.0e5,
                looped_reads_per_sec: 1.5e5,
            },
            merkle: MerkleThroughput {
                lane_digests_per_sec: 1.6e7,
                oneshot_digests_per_sec: 8.0e6,
                batched_verifies_per_sec: 4.0e5,
                looped_verifies_per_sec: 2.0e5,
                batched_persists_per_sec: 3.0e5,
                looped_persists_per_sec: 2.0e5,
            },
            snap: SnapshotThroughput {
                cold_setup_wall: Duration::from_millis(800),
                restore_wall: Duration::from_millis(100),
                snapshot_bytes: 1 << 20,
            },
            serial_wall: Duration::from_millis(900),
            parallel_wall: Duration::from_millis(300),
            cells: vec![CellRecord {
                workload: "YCSB \"zipf\"".to_string(),
                mode: "fsencr".to_string(),
                wall: Duration::from_millis(250),
                sim_cycles: 1000,
                nvm_lines: 500,
            }],
        }
    }

    #[test]
    fn speedups_are_ratios() {
        let r = sample_report();
        assert!((r.aes.speedup() - 4.0).abs() < 1e-9);
        assert!((r.digest.speedup() - 2.0).abs() < 1e-9);
        assert!((r.pad.speedup() - 3.0).abs() < 1e-9);
        assert!((r.meta.speedup() - 10.0).abs() < 1e-9);
        assert!((r.meta.persist_speedup() - 1.25).abs() < 1e-9);
        assert!((r.batch.pad_speedup() - 2.0).abs() < 1e-9);
        assert!((r.batch.read_speedup() - 2.0).abs() < 1e-9);
        assert!((r.merkle.lanes_speedup() - 2.0).abs() < 1e-9);
        assert!((r.merkle.verify_speedup() - 2.0).abs() < 1e-9);
        assert!((r.merkle.persist_speedup() - 1.5).abs() < 1e-9);
        assert!((r.snap.speedup() - 8.0).abs() < 1e-9);
        assert!((r.engine_speedup() - 3.0).abs() < 1e-9);
        assert_eq!(r.cells[0].sim_lines_per_sec(), 2000.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = sample_report().to_json();
        assert!(json.contains("\"schema\": \"fsencr-bench-harness/5\""));
        assert!(json.contains("\"line_hashes_per_sec\""));
        assert!(json.contains("\"cached_pads_per_sec\""));
        assert!(json.contains("\"memo_digests_per_sec\""));
        assert!(json.contains("\"memo_persists_per_sec\""));
        assert!(json.contains("\"quad_pads_per_sec\""));
        assert!(json.contains("\"batched_reads_per_sec\""));
        assert!(json.contains("\"lane_digests_per_sec\""));
        assert!(json.contains("\"batched_verifies_per_sec\""));
        assert!(json.contains("\"batched_persists_per_sec\""));
        assert!(json.contains("\"cold_setup_wall_s\""));
        assert!(json.contains("\"snapshot_bytes\": 1048576"));
        assert!(json.contains("\\\"zipf\\\""), "quotes must be escaped: {json}");
        assert!(json.contains("\"speedup\": 4.000000"));
        // Balanced braces/brackets (cheap sanity check without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn recorder_drains() {
        // Other tests in this binary may be recording cells concurrently,
        // so only reason about this test's own uniquely-named record.
        let name = "recorder-drains-probe";
        record_cell(
            name,
            SecurityMode::FsEncr,
            Duration::from_millis(1),
            &RunStats::default(),
        );
        let got = take_cell_records();
        assert_eq!(got.iter().filter(|c| c.workload == name).count(), 1);
        let again = take_cell_records();
        assert_eq!(again.iter().filter(|c| c.workload == name).count(), 0);
    }
}
