//! Content-addressed cache of experiment-cell results.
//!
//! Every figure decomposes into independent cells — one `(workload,
//! security mode, machine config)` simulation each — and each cell is a
//! pure function of its inputs: the simulator is deterministic by
//! construction (enforced by the determinism test suite). That makes
//! cell results safe to memoize *by content*: the cache key is a SHA-256
//! over everything that feeds the simulation — the crate-version salt,
//! the cell label, the security mode, the full `Debug` rendering of
//! [`MachineOpts`] (which includes every architectural knob), and the
//! workload's parameter-complete [`spec()`](fsencr_workloads::driver::Workload::spec)
//! string. Any change to any of those yields a different key, so a stale
//! entry can never be served; deleting `CACHE_cells.json` (or passing
//! `--no-cache`) always falls back to a full re-simulation with
//! byte-identical output.
//!
//! The cache stores raw [`RunStats`] with the two `f64` rates encoded as
//! `to_bits` integers, so a hit reproduces the simulated result
//! bit-for-bit — figures rendered from cached cells are byte-identical
//! to figures rendered from fresh runs.
//!
//! The store is process-global (cells run on pool worker threads) and
//! disabled by default; the `harness` binary enables it for figure
//! subcommands only. `harness bench` and `harness profile` keep it
//! disabled — `bench` times the engine and a warm cache would skip the
//! very work being measured.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

use fsencr::machine::{MachineOpts, RunStats, SecurityMode};
use fsencr_crypto::sha256;

use crate::jsonio::Json;

/// On-disk schema identifier; bump on any layout change.
pub const SCHEMA: &str = "fsencr-cell-cache/1";

/// Version salt folded into every key: a new crate version invalidates
/// every cached cell, because any code change may change results.
fn version_salt() -> String {
    format!("fsencr-bench/{}", env!("CARGO_PKG_VERSION"))
}

/// The content-addressed key of one experiment cell.
///
/// Field separators are `\x1f` (ASCII unit separator), which cannot
/// appear in labels, `Debug` renderings, or `spec()` strings, so
/// distinct inputs cannot collide by concatenation.
pub fn cell_key(label: &str, mode: SecurityMode, opts: &MachineOpts, spec: &str) -> String {
    let mut material = String::new();
    material.push_str(&version_salt());
    material.push('\x1f');
    material.push_str(label);
    material.push('\x1f');
    material.push_str(&mode.to_string());
    material.push('\x1f');
    material.push_str(&format!("{opts:?}"));
    material.push('\x1f');
    material.push_str(spec);
    let digest = sha256(material.as_bytes());
    let mut hex = String::with_capacity(64);
    for b in digest {
        hex.push_str(&format!("{b:02x}"));
    }
    hex
}

struct Store {
    path: PathBuf,
    cells: BTreeMap<String, RunStats>,
    dirty: bool,
    hits: u64,
    misses: u64,
}

static STORE: Mutex<Option<Store>> = Mutex::new(None);

fn with_store<T>(f: impl FnOnce(&mut Option<Store>) -> T) -> T {
    let mut guard = STORE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    f(&mut guard)
}

/// Enables the cache backed by `path` (loading any compatible existing
/// file), or disables it with `None`. An unreadable, malformed, or
/// schema-mismatched file is treated as empty, never as an error: the
/// cache is an accelerator, not a dependency.
pub fn configure(path: Option<PathBuf>) {
    with_store(|store| {
        *store = path.map(|path| {
            let cells = load(&path).unwrap_or_default();
            Store { path, cells, dirty: false, hits: 0, misses: 0 }
        });
    });
}

/// Whether a cache is currently configured.
pub fn is_enabled() -> bool {
    with_store(|store| store.is_some())
}

/// `(hits, misses)` since [`configure`].
pub fn counters() -> (u64, u64) {
    with_store(|store| store.as_ref().map_or((0, 0), |s| (s.hits, s.misses)))
}

/// Number of cells currently held (loaded + stored this run).
pub fn len() -> usize {
    with_store(|store| store.as_ref().map_or(0, |s| s.cells.len()))
}

/// Fetches the cached result for `key`, if the cache is enabled and has
/// one. Counts a hit or miss.
pub fn lookup(key: &str) -> Option<RunStats> {
    with_store(|store| {
        let s = store.as_mut()?;
        match s.cells.get(key) {
            Some(stats) => {
                s.hits += 1;
                Some(*stats)
            }
            None => {
                s.misses += 1;
                None
            }
        }
    })
}

/// Records a freshly simulated result under `key` (no-op when disabled).
pub fn store(key: &str, stats: &RunStats) {
    with_store(|store| {
        if let Some(s) = store.as_mut() {
            s.cells.insert(key.to_string(), *stats);
            s.dirty = true;
        }
    });
}

/// Writes the cache back to its file if anything changed.
///
/// # Errors
///
/// The I/O failure, rendered; the in-memory cache stays intact.
pub fn persist() -> Result<(), String> {
    with_store(|store| {
        let Some(s) = store.as_mut() else { return Ok(()) };
        if !s.dirty {
            return Ok(());
        }
        std::fs::write(&s.path, render(&s.cells))
            .map_err(|e| format!("writing {}: {e}", s.path.display()))?;
        s.dirty = false;
        Ok(())
    })
}

const U64_FIELDS: &[&str] = &[
    "cycles",
    "nvm_reads",
    "nvm_writes",
    "ott_hits",
    "ott_misses",
    "file_accesses",
    "read_p50",
    "read_p99",
    "meta_hit_rate_bits",
    "tlb_hit_rate_bits",
];

fn field(stats: &RunStats, name: &str) -> u64 {
    match name {
        "cycles" => stats.cycles,
        "nvm_reads" => stats.nvm_reads,
        "nvm_writes" => stats.nvm_writes,
        "ott_hits" => stats.ott_hits,
        "ott_misses" => stats.ott_misses,
        "file_accesses" => stats.file_accesses,
        "read_p50" => stats.read_p50,
        "read_p99" => stats.read_p99,
        "meta_hit_rate_bits" => stats.meta_hit_rate.to_bits(),
        "tlb_hit_rate_bits" => stats.tlb_hit_rate.to_bits(),
        _ => unreachable!("unknown RunStats field {name}"),
    }
}

fn render(cells: &BTreeMap<String, RunStats>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"salt\": \"{}\",\n", version_salt()));
    out.push_str("  \"cells\": {");
    for (i, (key, stats)) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{key}\": {{"));
        for (j, name) in U64_FIELDS.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {}", field(stats, name)));
        }
        out.push('}');
    }
    out.push_str("\n  }\n}\n");
    out
}

fn load(path: &std::path::Path) -> Option<BTreeMap<String, RunStats>> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = Json::parse(&text).ok()?;
    if json.get("schema")?.as_str()? != SCHEMA {
        return None;
    }
    // The salt also lives inside every key; checking it here lets a
    // version bump drop the whole file instead of keeping dead entries.
    if json.get("salt")?.as_str()? != version_salt() {
        return None;
    }
    let mut out = BTreeMap::new();
    for (key, cell) in json.get("cells")?.as_obj()? {
        let get = |name: &str| cell.get(name).and_then(Json::as_u64);
        let stats = RunStats {
            cycles: get("cycles")?,
            nvm_reads: get("nvm_reads")?,
            nvm_writes: get("nvm_writes")?,
            meta_hit_rate: f64::from_bits(get("meta_hit_rate_bits")?),
            ott_hits: get("ott_hits")?,
            ott_misses: get("ott_misses")?,
            file_accesses: get("file_accesses")?,
            tlb_hit_rate: f64::from_bits(get("tlb_hit_rate_bits")?),
            read_p50: get("read_p50")?,
            read_p99: get("read_p99")?,
        };
        out.insert(key.clone(), stats);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        RunStats {
            cycles: 123_456_789_012,
            nvm_reads: 42,
            nvm_writes: 7,
            meta_hit_rate: 0.1 + 0.2, // deliberately non-representable
            ott_hits: 5,
            ott_misses: 3,
            file_accesses: 11,
            tlb_hit_rate: 1.0 / 3.0,
            read_p50: 250,
            read_p99: 1200,
        }
    }

    fn assert_bit_identical(a: &RunStats, b: &RunStats) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.nvm_reads, b.nvm_reads);
        assert_eq!(a.nvm_writes, b.nvm_writes);
        assert_eq!(a.meta_hit_rate.to_bits(), b.meta_hit_rate.to_bits());
        assert_eq!(a.ott_hits, b.ott_hits);
        assert_eq!(a.ott_misses, b.ott_misses);
        assert_eq!(a.file_accesses, b.file_accesses);
        assert_eq!(a.tlb_hit_rate.to_bits(), b.tlb_hit_rate.to_bits());
        assert_eq!(a.read_p50, b.read_p50);
        assert_eq!(a.read_p99, b.read_p99);
    }

    #[test]
    fn render_load_round_trip_is_bit_exact() {
        let mut cells = BTreeMap::new();
        cells.insert(
            cell_key("w", SecurityMode::FsEncr, &MachineOpts::small_test(), "w(n=1)"),
            sample(),
        );
        let text = render(&cells);
        let json = Json::parse(&text).expect("render emits valid JSON");
        assert_eq!(json.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let dir = std::env::temp_dir().join(format!("cellcache-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, &text).unwrap();
        let loaded = load(&path).expect("round trip");
        assert_eq!(loaded.len(), 1);
        for (k, v) in &cells {
            assert_bit_identical(v, &loaded[k]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keys_separate_every_input() {
        let opts = MachineOpts::small_test();
        let base = cell_key("w", SecurityMode::FsEncr, &opts, "w(n=1)");
        assert_eq!(base.len(), 64);
        assert_ne!(base, cell_key("w2", SecurityMode::FsEncr, &opts, "w(n=1)"));
        assert_ne!(base, cell_key("w", SecurityMode::MemoryOnly, &opts, "w(n=1)"));
        assert_ne!(base, cell_key("w", SecurityMode::FsEncr, &opts, "w(n=2)"));
        let other = fsencr::machine::MachineOpts::preset(fsencr::machine::Preset::SmallTest)
            .ott_latency_cycles(999)
            .build();
        assert_ne!(base, cell_key("w", SecurityMode::FsEncr, &other, "w(n=1)"));
    }

    #[test]
    fn schema_or_salt_mismatch_drops_the_file() {
        let dir = std::env::temp_dir().join(format!("cellcache-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let good = render(&BTreeMap::from([("k".to_string(), sample())]));
        std::fs::write(&path, good.replace(SCHEMA, "fsencr-cell-cache/0")).unwrap();
        assert!(load(&path).is_none());
        std::fs::write(&path, good.replace(&version_salt(), "fsencr-bench/0.0.0-other")).unwrap();
        assert!(load(&path).is_none());
        std::fs::write(&path, "not json at all").unwrap();
        assert!(load(&path).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
