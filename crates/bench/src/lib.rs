//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section V) on the simulated machine.
//!
//! Each `fig*`/`table*` function builds the workloads of Table II, runs
//! them under the relevant security modes, and returns a [`Figure`] whose
//! rows are the series the paper plots — normalized slowdowns, read/write
//! counts, sensitivity sweeps. The `harness` binary prints them; see
//! `EXPERIMENTS.md` in the repository root for paper-vs-measured notes.
//!
//! All experiments accept a `scale` in `(0, 1]` that shrinks operation
//! counts proportionally for quick smoke runs; `1.0` is the calibrated
//! full size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellcache;
pub mod experiments;
pub mod faultcamp;
pub mod jsonio;
pub use fsencr_sim::pool;
pub mod epochs;
pub mod profile;
pub mod report;
pub mod shell;
pub mod snapstore;
pub mod table;

pub use experiments::*;
pub use table::Figure;
