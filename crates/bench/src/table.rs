//! Result tables: a figure is a labelled grid of series values.

use std::fmt;

/// One reproduced figure/table: row labels x column series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Title, e.g. `"Figure 8: Slowdown (normalized), PMEMKV"`.
    pub title: String,
    /// Column headers (series names).
    pub columns: Vec<String>,
    /// `(row label, one value per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Whether to append a geometric-mean summary row.
    pub summarize: bool,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Figure {
            title: title.into(),
            columns,
            rows: Vec::new(),
            summarize: true,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push((label.into(), values));
    }

    /// Geometric mean per column (the paper reports averages of
    /// normalized values).
    pub fn geomean(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.columns.len());
        for c in 0..self.columns.len() {
            let logsum: f64 = self.rows.iter().map(|(_, v)| v[c].max(1e-12).ln()).sum();
            out.push(if self.rows.is_empty() {
                0.0
            } else {
                (logsum / self.rows.len() as f64).exp()
            });
        }
        out
    }

    /// Value at `(row_label, column)` if present (used by tests).
    pub fn value(&self, row_label: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        self.rows
            .iter()
            .find(|(l, _)| l == row_label)
            .map(|(_, v)| v[c])
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n=== {} ===", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(12))
            .max()
            .unwrap_or(12)
            .max("geomean".len());
        write!(f, "{:label_w$}", "")?;
        for c in &self.columns {
            write!(f, " {c:>14}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_w$}")?;
            for v in values {
                write!(f, " {v:>14.4}")?;
            }
            writeln!(f)?;
        }
        if self.summarize && !self.rows.is_empty() {
            write!(f, "{:label_w$}", "geomean")?;
            for v in self.geomean() {
                write!(f, " {v:>14.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut fig = Figure::new("t", vec!["a".into(), "b".into()]);
        fig.push("row1", vec![1.0, 2.0]);
        assert_eq!(fig.value("row1", "b"), Some(2.0));
        assert_eq!(fig.value("row1", "c"), None);
        assert_eq!(fig.value("nope", "a"), None);
    }

    #[test]
    fn geomean_is_geometric() {
        let mut fig = Figure::new("t", vec!["x".into()]);
        fig.push("r1", vec![1.0]);
        fig.push("r2", vec![4.0]);
        let gm = fig.geomean();
        assert!((gm[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_row_panics() {
        let mut fig = Figure::new("t", vec!["a".into()]);
        fig.push("r", vec![1.0, 2.0]);
    }

    #[test]
    fn display_contains_everything() {
        let mut fig = Figure::new("My Title", vec!["col".into()]);
        fig.push("rowlabel", vec![3.25]);
        let s = format!("{fig}");
        assert!(s.contains("My Title"));
        assert!(s.contains("rowlabel"));
        assert!(s.contains("3.2500"));
        assert!(s.contains("geomean"));
    }
}
