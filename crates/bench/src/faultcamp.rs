//! Deterministic fault-injection campaigns (`harness faults`).
//!
//! A campaign runs `spec.scenarios` independent scenarios. Each scenario
//! builds its own small [`Machine`], fully initialises a file (every line
//! written and persisted, so every line is inside the ECC oracle's
//! recovery coverage), arms the scenario's [`FaultPlan`], drives a seeded
//! stream of write/persist/read operations while the injector applies
//! bit-rot, torn writes, power cuts and wear-out cells, and finally
//! disarms, crash-recovers and audits every file line against a host-side
//! shadow copy.
//!
//! The audit's verdict per line:
//!
//! * **clean** — the read succeeds and matches the shadow (never
//!   corrupted, overwritten since, or repaired by recovery);
//! * **detected** — the read fails with a typed integrity error
//!   (quarantined by recovery's ECC sweep or fenced after a Merkle
//!   verification failure);
//! * **indeterminate** — a mid-operation integrity failure left the
//!   line's *durable* expectation unknowable: a failed write or persist
//!   aborts the batched writeback region at its first error, so only an
//!   unknown prefix of the span reached the device and the ECC record.
//!   Such lines are *provably outside coverage* (and stay there until a
//!   later write + persist succeeds) and are reported separately;
//! * **undetected** — the read succeeds but does not match the shadow.
//!   This is silent corruption inside coverage; the report surfaces it
//!   as `undetected_in_coverage`, which a healthy tree keeps at **0**.
//!
//! Determinism: scenarios share nothing mutable and are joined in
//! submission order by [`crate::pool::run_tasks`], every random choice
//! derives from the campaign seed (init) or `(seed, scenario)` (plans
//! and ops) via [`XorShift64`], and the report contains no wall-clock —
//! so `FAULTS_report.json` is byte-identical at any `--jobs` count and
//! under every [`crate::pool::Schedule`] policy.
//!
//! Scenario setup is *snapshot-seeded*: the post-initialisation machine
//! (file created, mapped, fully written and persisted) depends only on
//! the campaign seed, so it is built **once**, serialised with
//! [`Machine::save_snapshot`], and every scenario restores its own
//! machine from the shared bytes instead of re-simulating the
//! initialisation. The snapshot round-trip theorem (`snapshot_roundtrip`
//! suite) makes the restored machine bit-identical to the one that ran
//! setup in-process — [`campaign_matches_cold_setup`] in the test module
//! pins the resulting report bytes to the cold path's.

use std::collections::BTreeSet;
use std::sync::Arc;

use fsencr::machine::MachineError;
use fsencr::{Machine, MachineOpts, MemError, SecurityMode};
use fsencr_faults::{CampaignSpec, FaultKind, FaultPlan, XorShift64};
use fsencr_fs::{AccessKind, GroupId, Mode, UserId};

use crate::pool;

/// Pages of the campaign file; small enough that a scenario is fast,
/// large enough that faults land on distinct pages.
const FILE_PAGES: u64 = 4;
/// Campaign file size in bytes.
const FILE_BYTES: u64 = FILE_PAGES * 4096;
/// 64-byte lines in the campaign file.
const FILE_LINES: u64 = FILE_BYTES / 64;

/// Aggregated outcome of one scenario.
#[derive(Debug, Clone, Default)]
struct ScenarioOutcome {
    scenario: u64,
    planned: u64,
    applied: u64,
    benign: u64,
    bit_rot: u64,
    torn_write: u64,
    power_cut: u64,
    stuck_at: u64,
    recoveries: u64,
    rec_clean: u64,
    rec_repaired: u64,
    rec_unrecoverable: u64,
    rec_quarantined: u64,
    detected_during_ops: u64,
    silent_read_garbles: u64,
    lines_clean: u64,
    lines_detected: u64,
    lines_indeterminate: u64,
    lines_undetected: u64,
    quarantined_lines: u64,
}

/// The full campaign report serialised to `FAULTS_report.json`
/// (schema `fsencr-faults/1`, documented in `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct CampaignReport {
    seed: u64,
    spec: CampaignSpec,
    scenarios: Vec<ScenarioOutcome>,
}

impl CampaignReport {
    fn sum(&self, f: impl Fn(&ScenarioOutcome) -> u64) -> u64 {
        self.scenarios.iter().map(f).sum()
    }

    /// Silently corrupted lines inside coverage — the headline number a
    /// campaign exists to prove is zero.
    pub fn undetected_in_coverage(&self) -> u64 {
        self.sum(|s| s.lines_undetected)
    }

    /// Corrupt or fenced lines the system surfaced as typed errors.
    pub fn detected_lines(&self) -> u64 {
        self.sum(|s| s.lines_detected)
    }

    /// Faults the injector actually applied (media bytes changed).
    pub fn applied_faults(&self) -> u64 {
        self.sum(|s| s.applied)
    }

    /// `detected / (detected + undetected)`; `1` when nothing corrupted.
    fn detection_rate(&self) -> f64 {
        let detected = self.detected_lines();
        let denom = detected + self.undetected_in_coverage();
        if denom == 0 {
            1.0
        } else {
            detected as f64 / denom as f64
        }
    }

    /// Fraction of audited lines that read back clean and correct.
    fn recovery_rate(&self) -> f64 {
        let total = self.sum(|_| FILE_LINES);
        if total == 0 {
            1.0
        } else {
            self.sum(|s| s.lines_clean) as f64 / total as f64
        }
    }

    /// Serialises the report. Pure function of the campaign inputs: no
    /// timestamps, no wall-clock, no host state.
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "      {{\"scenario\": {}, \"planned\": {}, \"applied\": {}, \"benign\": {}, \"recoveries\": {}, \"detected_during_ops\": {}, \"silent_read_garbles\": {}, \"lines_clean\": {}, \"lines_detected\": {}, \"lines_indeterminate\": {}, \"undetected_in_coverage\": {}, \"quarantined_lines\": {}}}",
                s.scenario,
                s.planned,
                s.applied,
                s.benign,
                s.recoveries,
                s.detected_during_ops,
                s.silent_read_garbles,
                s.lines_clean,
                s.lines_detected,
                s.lines_indeterminate,
                s.lines_undetected,
                s.quarantined_lines,
            ));
        }
        format!(
            "{{\n  \"schema\": \"fsencr-faults/1\",\n  \"seed\": {},\n  \"spec\": \"{}\",\n  \"lines_per_scenario\": {},\n  \"injected\": {{\n    \"planned\": {},\n    \"applied\": {},\n    \"benign\": {},\n    \"bit_rot\": {},\n    \"torn_write\": {},\n    \"power_cut\": {},\n    \"stuck_at\": {}\n  }},\n  \"recovery\": {{\n    \"invocations\": {},\n    \"clean\": {},\n    \"repaired\": {},\n    \"unrecoverable\": {},\n    \"quarantined\": {}\n  }},\n  \"audit\": {{\n    \"lines_total\": {},\n    \"lines_clean\": {},\n    \"lines_detected\": {},\n    \"lines_indeterminate\": {},\n    \"undetected_in_coverage\": {},\n    \"undetected_outside_coverage\": {}\n  }},\n  \"detection_rate\": \"{:.4}\",\n  \"recovery_rate\": \"{:.4}\",\n  \"quarantined_lines\": {},\n  \"detected_during_ops\": {},\n  \"silent_read_garbles\": {},\n  \"per_scenario\": [\n{}\n    ]\n}}\n",
            self.seed,
            self.spec,
            FILE_LINES,
            self.sum(|s| s.planned),
            self.applied_faults(),
            self.sum(|s| s.benign),
            self.sum(|s| s.bit_rot),
            self.sum(|s| s.torn_write),
            self.sum(|s| s.power_cut),
            self.sum(|s| s.stuck_at),
            self.sum(|s| s.recoveries),
            self.sum(|s| s.rec_clean),
            self.sum(|s| s.rec_repaired),
            self.sum(|s| s.rec_unrecoverable),
            self.sum(|s| s.rec_quarantined),
            self.sum(|_| FILE_LINES),
            self.sum(|s| s.lines_clean),
            self.detected_lines(),
            self.sum(|s| s.lines_indeterminate),
            self.undetected_in_coverage(),
            self.sum(|s| s.lines_indeterminate),
            self.detection_rate(),
            self.recovery_rate(),
            self.sum(|s| s.quarantined_lines),
            self.sum(|s| s.detected_during_ops),
            self.sum(|s| s.silent_read_garbles),
            rows,
        )
    }

    /// One-line human summary for the harness's stderr.
    pub fn summary(&self) -> String {
        format!(
            "{} scenarios, {} faults applied ({} planned): {} lines detected, {} clean, {} indeterminate, {} UNDETECTED; {} quarantined",
            self.scenarios.len(),
            self.applied_faults(),
            self.sum(|s| s.planned),
            self.detected_lines(),
            self.sum(|s| s.lines_clean),
            self.sum(|s| s.lines_indeterminate),
            self.undetected_in_coverage(),
            self.sum(|s| s.quarantined_lines),
        )
    }
}

/// True for errors the datapath raised as typed integrity refusals.
fn is_integrity(e: &MachineError) -> bool {
    matches!(e, MachineError::Mem(MemError::Integrity(_)))
}

/// Fills `buf` from the scenario's op stream.
fn fill_random(rng: &mut XorShift64, buf: &mut [u8]) {
    for chunk in buf.chunks_mut(8) {
        let v = rng.next_u64().to_le_bytes();
        chunk.copy_from_slice(&v[..chunk.len()]);
    }
}

/// The shared post-initialisation state every scenario starts from: the
/// machine snapshot plus the host-side shadow of the file's content.
/// A pure function of the campaign seed.
pub struct CampaignBase {
    snapshot: Vec<u8>,
    shadow: Vec<u8>,
}

/// Builds the post-initialisation machine in-process: file created,
/// mapped, every line written and persisted before any injector arms,
/// so the ECC oracle covers the whole file and the audit has no
/// out-of-coverage holes by construction.
fn setup_base(seed: u64) -> (Machine, fsencr::machine::MapId, Vec<u8>) {
    let mut m = Machine::new(MachineOpts::small_test(), SecurityMode::FsEncr);
    let h = m
        .create(UserId::new(1), GroupId::new(1), "camp.bin", Mode::PRIVATE, Some("pw"))
        .expect("campaign file creates");
    let map = m.mmap(&h).expect("campaign file maps");
    let mut shadow = vec![0u8; FILE_BYTES as usize];
    let mut init_rng = XorShift64::new(seed).derive(0xF111);
    fill_random(&mut init_rng, &mut shadow);
    for page in 0..FILE_PAGES {
        let off = page * 4096;
        m.write(0, map, off, &shadow[off as usize..(off + 4096) as usize])
            .expect("pristine machine accepts the init write");
        m.persist(0, map, off, 4096)
            .expect("pristine machine persists the init write");
    }
    (m, map, shadow)
}

/// Serialises the seed's post-initialisation state once, for every
/// scenario to restore from.
pub fn campaign_base(seed: u64) -> CampaignBase {
    let (m, _, shadow) = setup_base(seed);
    let snapshot = m.save_snapshot().expect("no injector armed during setup");
    CampaignBase { snapshot, shadow }
}

/// Runs one scenario and audits the outcome. See the module docs for the
/// exact protocol and verdict taxonomy.
///
/// With a [`CampaignBase`], the scenario restores the shared post-init
/// snapshot; without one it re-simulates the initialisation. Both paths
/// produce identical outcomes (pinned by the test suite).
fn run_scenario(
    seed: u64,
    scenario: u64,
    spec: &CampaignSpec,
    base: Option<&CampaignBase>,
) -> ScenarioOutcome {
    let mut out = ScenarioOutcome {
        scenario,
        ..ScenarioOutcome::default()
    };
    let user = UserId::new(1);
    let group = GroupId::new(1);
    let (mut m, mut map, mut shadow) = match base {
        Some(b) => {
            let m = Machine::restore_snapshot(
                MachineOpts::small_test(),
                SecurityMode::FsEncr,
                &b.snapshot,
            )
            .expect("campaign base snapshot restores");
            let map = m.mapping_of("camp.bin").expect("campaign file is mapped in the base");
            (m, map, b.shadow.clone())
        }
        None => setup_base(seed),
    };

    let plan = FaultPlan::generate(seed, scenario, spec);
    out.planned = plan.planned();
    {
        let mut fp = m.fault_plane();
        fp.set_auto_quarantine(true);
        fp.arm(plan);
    }

    // Lines whose *durable* expectation became unknowable. A failed
    // write or persist aborts the batched writeback region at the first
    // error, so an unknown prefix of the span reached the controller
    // (device + ECC record) while the tail kept its old bytes. A
    // read-back cannot disambiguate — it would hit the still-warm cache,
    // which holds the new bytes regardless of what became durable — so
    // the whole span honestly leaves coverage until a later successful
    // write + persist re-anchors each line.
    let mut indeterminate: BTreeSet<u64> = BTreeSet::new();
    let mut rng = XorShift64::new(seed).derive(scenario.wrapping_add(1)).derive(0x0505);
    // Set FAULTCAMP_DEBUG=1 for a per-operation trace on stderr.
    let dbg = std::env::var("FAULTCAMP_DEBUG").is_ok();

    fn mark_indeterminate(indeterminate: &mut BTreeSet<u64>, off: u64, len: u64) {
        for line in off / 64..(off + len) / 64 {
            indeterminate.insert(line);
        }
    }

    for op in 0..spec.ops {
        let line = rng.next_below(FILE_LINES);
        let off = line * 64;
        let span = 1 + rng.next_below(4);
        let len = (span * 64).min(FILE_BYTES - off);
        let lo = off as usize;
        let hi = (off + len) as usize;
        if rng.next_below(100) < 70 {
            let mut buf = vec![0u8; len as usize];
            fill_random(&mut rng, &mut buf);
            if dbg {
                eprintln!("[dbg] op {op}: WRITE lines {}..={}", off / 64, (off + len) / 64 - 1);
            }
            match m.write(0, map, off, &buf) {
                Ok(()) => {
                    // The datapath accepted every line: the ECC oracle now
                    // expects these bytes, so the shadow does too — even
                    // if the device suppressed the media write (that
                    // divergence is exactly what recovery must detect).
                    shadow[lo..hi].copy_from_slice(&buf);
                    for l in off / 64..(off + len) / 64 {
                        indeterminate.remove(&l);
                    }
                    // Under batching the writeback (and the ECC record)
                    // happen inside persist's clwb region, which aborts
                    // at the first error — a failed persist leaves the
                    // span's durable state unknowable.
                    if let Err(e) = m.persist(0, map, off, len) {
                        if dbg {
                            eprintln!("[dbg] op {op}: persist ERR {e}");
                        }
                        if is_integrity(&e) {
                            out.detected_during_ops += 1;
                        }
                        mark_indeterminate(&mut indeterminate, off, len);
                    }
                }
                Err(e) => {
                    if dbg {
                        eprintln!("[dbg] op {op}: write ERR {e}");
                    }
                    if is_integrity(&e) {
                        out.detected_during_ops += 1;
                    }
                    // A multi-line write may have applied (and even
                    // evicted) a prefix before failing; the shadow keeps
                    // the old bytes and the span leaves coverage.
                    mark_indeterminate(&mut indeterminate, off, len);
                }
            }
        } else {
            let mut buf = vec![0u8; len as usize];
            if dbg {
                eprintln!("[dbg] op {op}: READ lines {}..={}", off / 64, (off + len) / 64 - 1);
            }
            match m.read(0, map, off, &mut buf) {
                Ok(()) => {
                    if buf != shadow[lo..hi] {
                        // Data lines carry no per-read MAC (the paper's
                        // design); garbled reads are silent here and the
                        // recovery audit below must catch the line.
                        out.silent_read_garbles += 1;
                    }
                }
                Err(e) => {
                    if is_integrity(&e) {
                        out.detected_during_ops += 1;
                    }
                }
            }
        }
        if m.inspect_plane().power_lost() {
            m.fault_plane().restore_power();
            m.crash();
            let rep = m.recover();
            if dbg {
                eprintln!(
                    "[dbg] op {op}: mid-run recovery {rep:?}, quarantine {:?}",
                    m.inspect_plane().quarantined()
                );
            }
            out.recoveries += 1;
            out.rec_clean += rep.clean;
            out.rec_repaired += rep.repaired;
            out.rec_unrecoverable += rep.unrecoverable;
            out.rec_quarantined += rep.quarantined;
            let h = m
                .open(user, &[group], "camp.bin", AccessKind::Write, Some("pw"))
                .expect("campaign file reopens after power-loss recovery");
            map = m.mmap(&h).expect("campaign file remaps");
        }
    }

    // Disarm before the audit so no *new* faults land during it, then
    // count what the injector actually did.
    if m.inspect_plane().power_lost() {
        m.fault_plane().restore_power();
    }
    let events = m.fault_plane().disarm();
    if dbg {
        eprintln!("[dbg] scenario {scenario} events: {events:?}");
        eprintln!("[dbg] scenario {scenario} plan: {:?}", FaultPlan::generate(seed, scenario, spec));
    }
    for e in &events {
        if e.changed {
            out.applied += 1;
            match e.kind {
                FaultKind::BitRot => out.bit_rot += 1,
                FaultKind::TornWrite => out.torn_write += 1,
                FaultKind::PowerCut => out.power_cut += 1,
                FaultKind::StuckAt => out.stuck_at += 1,
            }
        } else {
            out.benign += 1;
        }
    }

    // Final crash + recovery: the ECC sweep is where silently-garbled
    // data lines enter coverage and get quarantined.
    m.crash();
    let rep = m.recover();
    if dbg {
        eprintln!(
            "[dbg] scenario {scenario}: final recovery {rep:?}, quarantine {:?}",
            m.inspect_plane().quarantined()
        );
    }
    out.recoveries += 1;
    out.rec_clean += rep.clean;
    out.rec_repaired += rep.repaired;
    out.rec_unrecoverable += rep.unrecoverable;
    out.rec_quarantined += rep.quarantined;
    let h = m
        .open(user, &[group], "camp.bin", AccessKind::Read, Some("pw"))
        .expect("campaign file reopens for the audit");
    map = m.mmap(&h).expect("campaign file remaps for the audit");

    for line in 0..FILE_LINES {
        let lo = (line * 64) as usize;
        let mut buf = [0u8; 64];
        match m.read(0, map, line * 64, &mut buf) {
            Ok(()) => {
                if buf == shadow[lo..lo + 64] {
                    out.lines_clean += 1;
                } else if indeterminate.contains(&line) {
                    out.lines_indeterminate += 1;
                } else {
                    out.lines_undetected += 1;
                    if dbg {
                        eprintln!("[dbg] scenario {scenario} UNDETECTED line {line} (addr {})", line * 64);
                    }
                }
            }
            // Typed refusal — quarantine fence or Merkle verdict. The
            // corruption (or conservative fence) was detected.
            Err(_) => out.lines_detected += 1,
        }
    }
    out.quarantined_lines = m.inspect_plane().quarantined().len() as u64;
    out
}

/// Runs the whole campaign: the shared post-init machine is built and
/// snapshotted once, then `spec.scenarios` scenarios restore from it and
/// fan out over [`pool::run_tasks`], joined in submission order.
pub fn run_campaign(seed: u64, spec: &CampaignSpec) -> CampaignReport {
    let base = Arc::new(campaign_base(seed));
    let tasks: Vec<_> = (0..spec.scenarios)
        .map(|scenario| {
            let spec = *spec;
            let base = Arc::clone(&base);
            move || run_scenario(seed, scenario, &spec, Some(&base))
        })
        .collect();
    CampaignReport {
        seed,
        spec: *spec,
        scenarios: pool::run_tasks(tasks),
    }
}

/// [`run_campaign`] with every scenario re-simulating its own setup —
/// the reference path the snapshot-seeded one must match byte for byte.
/// Kept for the equivalence tests and for auditing the store itself.
pub fn run_campaign_cold(seed: u64, spec: &CampaignSpec) -> CampaignReport {
    let tasks: Vec<_> = (0..spec.scenarios)
        .map(|scenario| {
            let spec = *spec;
            move || run_scenario(seed, scenario, &spec, None)
        })
        .collect();
    CampaignReport {
        seed,
        spec: *spec,
        scenarios: pool::run_tasks(tasks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_campaign_detects_everything_it_corrupts() {
        let spec: CampaignSpec = "scenarios=2,ops=24".parse().unwrap();
        let report = run_campaign(7, &spec);
        assert_eq!(report.undetected_in_coverage(), 0, "silent corruption escaped");
        assert!(report.applied_faults() > 0, "campaign injected nothing");
    }

    #[test]
    fn same_seed_same_bytes() {
        let spec: CampaignSpec = "scenarios=2,ops=16".parse().unwrap();
        let a = run_campaign(42, &spec).to_json();
        let b = run_campaign(42, &spec).to_json();
        assert_eq!(a, b);
        let c = run_campaign(43, &spec).to_json();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn campaign_matches_cold_setup() {
        // The snapshot-seeded path (one shared restored base) must
        // produce byte-identical report JSON to scenarios that each ran
        // their own in-process setup.
        let spec: CampaignSpec = "scenarios=3,ops=16".parse().unwrap();
        let warm = run_campaign(42, &spec).to_json();
        let cold = run_campaign_cold(42, &spec).to_json();
        assert_eq!(warm, cold, "snapshot-seeded campaign diverged from cold setup");
    }
}
