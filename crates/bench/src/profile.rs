//! `harness profile`: deterministic per-cell cycle attribution.
//!
//! Re-runs a figure's cells with the machine's observer enabled and
//! renders *where the cycles went* in each cell — pad generation vs
//! data-fetch overlap, per-structure metadata-cache misses, Merkle
//! climbs, OTT hits/spills, and NVM row-buffer outcomes. The cells run
//! through the same deterministic pool as the figures, and every export
//! (text, JSON, chrome-trace) is assembled in submission order from
//! sorted metric maps, so output is byte-identical at any `--jobs`
//! worker count and under any [`crate::pool::Schedule`].

use fsencr::machine::SecurityMode;
use fsencr::snapshot::StatsSnapshot;
use fsencr::trace::{TraceEvent, TraceKind};
use fsencr_obs::Observer;
use fsencr_workloads::driver::profile_workload;

use crate::experiments::{profile_cells, ProfileCellSpec};
use crate::pool;
use crate::report::{json_f64, json_string};

/// Default span-buffer capacity per cell: enough for small profile
/// scales; overflow is counted (`spans_dropped`), never silent.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// One profiled cell: a `(workload, mode)` run with attribution.
#[derive(Debug, Clone)]
pub struct ProfiledCell {
    /// Workload label (figure row name).
    pub label: String,
    /// Security mode the cell ran under.
    pub mode: SecurityMode,
    /// The measurement window as a raw counter delta.
    pub window: StatsSnapshot,
    /// The run-phase observer (metrics + spans).
    pub observer: Observer,
    /// Machine-level trace events (page faults, key installs, shreds)
    /// recorded over the same window.
    pub trace: Vec<TraceEvent>,
    /// Merkle batch-planner plans built over the run (host-side).
    pub batch_plans: u64,
    /// Digests the planner seeded into those plans.
    pub batch_digests_seeded: u64,
}

/// A full profile: every cell of one figure, in submission order.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The figure this profile covers (e.g. `fig8`).
    pub figure: String,
    /// The scale the cells ran at.
    pub scale: f64,
    /// Profiled cells in deterministic submission order.
    pub cells: Vec<ProfiledCell>,
}

/// Runs the cells of `fig` with observation enabled. Returns `None` for
/// figures without a profilable cell list (e.g. `table1`).
pub fn profile(fig: &str, scale: f64, span_capacity: usize) -> Option<ProfileReport> {
    let specs: Vec<ProfileCellSpec> = profile_cells(fig, scale)?;
    let tasks: Vec<_> = specs
        .iter()
        .map(|spec| {
            move || {
                let run = profile_workload(
                    spec.opts,
                    spec.mode,
                    (spec.factory)().as_mut(),
                    span_capacity,
                )
                .unwrap_or_else(|e| panic!("{} under {}: {e}", spec.label, spec.mode));
                ProfiledCell {
                    label: spec.label.clone(),
                    mode: spec.mode,
                    window: run.window,
                    observer: run.observer,
                    trace: run.trace,
                    batch_plans: run.plan_stats.0,
                    batch_digests_seeded: run.plan_stats.1,
                }
            }
        })
        .collect();
    Some(ProfileReport {
        figure: fig.to_string(),
        scale,
        cells: pool::run_tasks(tasks),
    })
}

fn trace_name(kind: &TraceKind) -> &'static str {
    match kind {
        TraceKind::PageFault { .. } => "page_fault",
        TraceKind::KeyInstall { .. } => "key_install",
        TraceKind::KeyRemove { .. } => "key_remove",
        TraceKind::Shred { .. } => "shred",
        TraceKind::Journal { .. } => "journal",
        TraceKind::Crash => "crash",
        TraceKind::Recover { .. } => "recover",
    }
}

impl ProfiledCell {
    fn header(&self) -> String {
        format!("{} [{}]", self.label, self.mode)
    }

    /// The attribution groups the paper's datapath story names, derived
    /// from the observer metrics: `(group, cycles-or-count rows)`.
    fn breakdown(&self) -> Vec<(&'static str, u64)> {
        let m = |k: &'static str| self.observer.metric(k);
        vec![
            ("read total cycles", m("ctrl/read/total_cycles")),
            ("read data-fetch cycles", m("ctrl/read/data_cycles")),
            ("read pad-exposed cycles", m("ctrl/read/pad_exposed_cycles")),
            ("read pad-gen cycles", m("ctrl/read/pad_gen_cycles")),
            ("read mecb-wait cycles", m("ctrl/read/mecb_wait_cycles")),
            ("read fecb-wait cycles", m("ctrl/read/fecb_wait_cycles")),
            ("read key-wait cycles", m("ctrl/read/key_wait_cycles")),
            ("write total cycles", m("ctrl/write/total_cycles")),
            ("write pad-wait cycles", m("ctrl/write/pad_wait_cycles")),
            ("write mecb-wait cycles", m("ctrl/write/mecb_wait_cycles")),
            ("write key-wait cycles", m("ctrl/write/key_wait_cycles")),
            ("write overflows", m("ctrl/write/overflows")),
            ("ott hit cycles", m("ott/hit_cycles")),
            ("ott miss cycles", m("ott/miss_cycles")),
        ]
    }
}

impl ProfileReport {
    /// Human-readable per-cell breakdown.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile {} (scale {}): {} cells\n",
            self.figure,
            json_f64(self.scale),
            self.cells.len()
        ));
        for cell in &self.cells {
            out.push_str(&format!("\n== {} ==\n", cell.header()));
            let w = &cell.window;
            out.push_str(&format!(
                "  window: {} cycles, {} reads, {} writes, {} nvm reads, {} nvm writes\n",
                w.cycles, w.reads, w.writes, w.nvm_reads, w.nvm_writes
            ));
            out.push_str(&format!(
                "  caches: meta {:.1}% (mecb {}h/{}m fecb {}h/{}m spill {}h/{}m node {}h/{}m), ott {:.1}%, rows {}h/{}m\n",
                100.0 * w.meta_hit_rate(),
                w.meta_mecb_hits,
                w.meta_mecb_misses,
                w.meta_fecb_hits,
                w.meta_fecb_misses,
                w.meta_spill_hits,
                w.meta_spill_misses,
                w.meta_node_hits,
                w.meta_node_misses,
                100.0 * w.ott_hit_rate(),
                w.nvm_row_hits,
                w.nvm_row_misses
            ));
            out.push_str(&format!(
                "  merkle: {} climbs, {} levels walked, {} parent bumps; osiris persists {}\n",
                w.meta_verify_climbs, w.meta_verify_levels, w.meta_update_bumps, w.meta_osiris_persists
            ));
            out.push_str(&format!(
                "  batch planner: {} plans, {} digests seeded\n",
                cell.batch_plans, cell.batch_digests_seeded
            ));
            out.push_str("  attribution:\n");
            for (name, v) in cell.breakdown() {
                if v > 0 {
                    out.push_str(&format!("    {name:<26} {v}\n"));
                }
            }
            out.push_str(&format!(
                "  spans: {} recorded, {} dropped; machine trace events: {}\n",
                cell.observer.spans().count(),
                cell.observer.spans_dropped(),
                cell.trace.len()
            ));
        }
        out
    }

    /// Machine-readable export: every cell with its full metric map and
    /// counter window. Byte-stable by construction (sorted metric keys,
    /// submission-order cells).
    pub fn to_json(&self) -> String {
        let mut cells = String::new();
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                cells.push(',');
            }
            let mut metrics = String::new();
            for (j, (k, v)) in cell.observer.metrics().enumerate() {
                if j > 0 {
                    metrics.push(',');
                }
                metrics.push_str(&format!("\n        {}: {}", json_string(k), v));
            }
            let mut window = String::new();
            for (j, (k, v)) in cell.window.rows().iter().enumerate() {
                if j > 0 {
                    window.push(',');
                }
                window.push_str(&format!("\n        {}: {}", json_string(k), v));
            }
            cells.push_str(&format!(
                "\n    {{\n      \"label\": {},\n      \"mode\": {},\n      \"metrics\": {{{}\n      }},\n      \"window\": {{{}\n      }},\n      \"batch_plans\": {},\n      \"batch_digests_seeded\": {},\n      \"spans_recorded\": {},\n      \"spans_dropped\": {},\n      \"trace_events\": {}\n    }}",
                json_string(&cell.label),
                json_string(&cell.mode.to_string()),
                metrics,
                window,
                cell.batch_plans,
                cell.batch_digests_seeded,
                cell.observer.spans().count(),
                cell.observer.spans_dropped(),
                cell.trace.len()
            ));
        }
        format!(
            "{{\n  \"schema\": \"fsencr-profile/1\",\n  \"figure\": {},\n  \"scale\": {},\n  \"cells\": [{}\n  ]\n}}\n",
            json_string(&self.figure),
            json_f64(self.scale),
            cells
        )
    }

    /// `chrome://tracing` / Perfetto export: one process per cell (pid =
    /// cell index + 1, named by a metadata event), spans in record order.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for (i, cell) in self.cells.iter().enumerate() {
            let pid = i + 1;
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": 1, \"args\": {{\"name\": {}}}}}",
                pid,
                json_string(&cell.header())
            ));
            for s in cell.observer.spans() {
                out.push_str(&format!(
                    ",\n  {{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"pid\": {}, \"tid\": 1, \"ts\": {}, \"dur\": {}, \"args\": {{\"arg\": {}}}}}",
                    json_string(s.name),
                    json_string(s.cat),
                    pid,
                    s.begin,
                    s.duration(),
                    s.arg
                ));
            }
            // Machine-level events (page faults, key installs, shreds)
            // appear as instant markers on the same timeline.
            for e in &cell.trace {
                out.push_str(&format!(
                    ",\n  {{\"name\": \"{}\", \"cat\": \"machine\", \"ph\": \"i\", \"pid\": {}, \"tid\": 1, \"ts\": {}, \"s\": \"t\"}}",
                    trace_name(&e.kind),
                    pid,
                    e.at.get()
                ));
            }
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_yields_none() {
        assert!(profile("table1", 0.01, 0).is_none());
        assert!(profile("nonsense", 0.01, 0).is_none());
    }

    #[test]
    fn fig8_profile_attributes_cycles() {
        let report = profile("fig8", 0.01, 1 << 14).expect("fig8 is profilable");
        assert!(!report.cells.is_empty());
        // FsEncr cells must attribute pad generation and metadata waits.
        let fse: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.mode == SecurityMode::FsEncr)
            .collect();
        assert!(!fse.is_empty());
        // At smoke scale some read-only cells are fully cache-resident, so
        // pad generation is asserted across the mode, not per cell.
        let pad_gen: u64 = fse
            .iter()
            .map(|c| {
                c.observer.metric("ctrl/read/pad_gen_cycles")
                    + c.observer.metric("ctrl/write/pad_gen_cycles")
            })
            .sum();
        assert!(pad_gen > 0);
        for cell in fse {
            assert!(cell.window.cycles > 0, "{}", cell.label);
        }
        // All three exports are well-formed and non-empty.
        let text = report.render_text();
        assert!(text.contains("attribution"));
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"fsencr-profile/1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let trace = report.to_chrome_trace();
        assert!(trace.starts_with('[') && trace.ends_with("]\n"));
    }

    #[test]
    fn machine_events_render_as_instant_markers() {
        use fsencr_sim::Cycle;
        let mut obs = Observer::default();
        obs.enable(4);
        obs.span("ctrl", "read_line", 10, 25, 64);
        let report = ProfileReport {
            figure: "synthetic".to_string(),
            scale: 1.0,
            cells: vec![ProfiledCell {
                label: "cell".to_string(),
                mode: SecurityMode::FsEncr,
                window: StatsSnapshot::default(),
                observer: obs,
                trace: vec![TraceEvent {
                    at: Cycle::new(17),
                    kind: TraceKind::Shred { frame: 3 },
                }],
                batch_plans: 2,
                batch_digests_seeded: 5,
            }],
        };
        let trace = report.to_chrome_trace();
        assert!(
            trace.contains("\"name\": \"shred\", \"cat\": \"machine\", \"ph\": \"i\", \"pid\": 1, \"tid\": 1, \"ts\": 17"),
            "{trace}"
        );
        assert!(trace.contains("\"ph\": \"X\""), "{trace}");
        assert!(report.to_json().contains("\"trace_events\": 1"));
        assert!(report.to_json().contains("\"batch_plans\": 2"));
        assert!(report.to_json().contains("\"batch_digests_seeded\": 5"));
        assert!(report.render_text().contains("machine trace events: 1"));
        assert!(report.render_text().contains("batch planner: 2 plans, 5 digests seeded"));
    }
}
