//! Minimal JSON reader for the harness's own on-disk artifacts.
//!
//! The workspace is offline (no serde), and the harness both writes and
//! re-reads two JSON files: the content-addressed cell cache
//! (`CACHE_cells.json`) and the bench report (`BENCH_harness.json`,
//! schema-checked by `harness bench-check`). This parser covers exactly
//! the JSON those writers emit — objects, arrays, strings with `\`
//! escapes, numbers, booleans, null — and keeps numbers as their source
//! text so 64-bit integers (e.g. `f64::to_bits` round-trips) survive
//! without a lossy trip through `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers keep their raw text; convert on demand.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, unparsed (lossless for 64-bit integers).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `src` as a single JSON value (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a value at byte {start}"));
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    // Validate: must parse as f64 at minimum.
    text.parse::<f64>().map_err(|e| format!("bad number {text:?}: {e}"))?;
    Ok(Json::Num(text.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + len)
                    .ok_or_else(|| "truncated UTF-8".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let j = Json::parse(
            r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y", "d": true}, "e": null}"#,
        )
        .unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(j.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(j.get("e"), Some(&Json::Null));
    }

    #[test]
    fn u64_numbers_round_trip_losslessly() {
        // f64::to_bits values exceed f64's exact integer range; the raw
        // text must survive.
        let big = u64::MAX - 1;
        let j = Json::parse(&format!("{{\"bits\": {big}}}")).unwrap();
        assert_eq!(j.get("bits").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "1 2", "tru"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_utf8_pass_through() {
        let j = Json::parse(r#""café — ok""#).unwrap();
        assert_eq!(j.as_str(), Some("café — ok"));
    }
}
