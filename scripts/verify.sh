#!/usr/bin/env sh
# Tier-1 verification: everything a change must pass before merging.
# Works fully offline — the workspace has no registry dependencies.
set -eu

cd "$(dirname "$0")/.."

# Self-labeling wall-clock: every section announces itself via `begin`
# and reports its own duration (plus the running total) via `finish`,
# so a slow verify run says *which* section got slow without anyone
# diffing timestamps.
t_start=$(date +%s)
t_section=$t_start
section_label=""
begin() {
    section_label="$1"
    t_section=$(date +%s)
    echo "==> $section_label"
}
finish() {
    now=$(date +%s)
    echo "    [section '$section_label' took $(( now - t_section ))s; total $(( now - t_start ))s]"
}

begin "cargo build --release"
cargo build --release
finish

begin "cargo test -q --workspace"
cargo test -q --workspace
finish

begin "batched-datapath equivalence: region ops vs legacy per-line path"
cargo test -q -p fsencr --test batch_equivalence
cargo test -q -p fsencr-workloads --test batch_parity
finish

begin "batched Merkle engine: lane kernel cross-validation + region/rebuild equivalence"
cargo test -q -p fsencr-crypto --lib lanes
cargo test -q -p fsencr-secmem --lib batch
cargo test -q -p fsencr-secmem --lib verify_lines
cargo test -q -p fsencr-secmem --lib parallel_rebuild
finish

begin "snapshot subsystem: codec round-trip + warm-start equivalence + figure determinism"
cargo test -q -p fsencr-snapshot
cargo test -q -p fsencr --test snapshot_roundtrip
cargo test -q -p fsencr-workloads --test warm_start
cargo test -q -p fsencr-bench --test snapshot_determinism
finish

begin "security-oracle replay: figures + rekey + crash recovery under armed oracles"
cargo test -q -p fsencr-bench --test oracle_replay
finish

begin "fault campaign properties: determinism across jobs/schedules, injector neutrality"
cargo test -q -p fsencr-bench --test fault_campaign
finish

begin "cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings
finish

begin "static analysis gate: cargo run -p analysis -- check"
cargo run --release -q -p analysis -- check
finish

begin "harness bench (small scale) + schema check"
bench_dir="$(mktemp -d)"
(cd "$bench_dir" && "$OLDPWD/target/release/harness" bench 0.01)
./target/release/harness bench-check "$bench_dir/BENCH_harness.json"
rm -rf "$bench_dir"
finish

begin "seeded fault campaign: byte-identical across --jobs, zero undetected corruption"
faults_dir="$(mktemp -d)"
./target/release/harness --jobs 1 faults --seed 42 --campaign "scenarios=4,ops=48" \
    --out "$faults_dir/FAULTS_j1.json"
./target/release/harness --jobs 4 faults --seed 42 --campaign "scenarios=4,ops=48" \
    --out "$faults_dir/FAULTS_j4.json"
if ! cmp -s "$faults_dir/FAULTS_j1.json" "$faults_dir/FAULTS_j4.json"; then
    echo "FAIL: FAULTS report differs between --jobs 1 and --jobs 4" >&2
    diff "$faults_dir/FAULTS_j1.json" "$faults_dir/FAULTS_j4.json" >&2 || true
    exit 1
fi
if ! grep -q '"undetected_in_coverage": 0' "$faults_dir/FAULTS_j1.json"; then
    echo "FAIL: campaign reported undetected in-coverage corruption" >&2
    exit 1
fi
rm -rf "$faults_dir"
finish

begin "snapshot save -> restore + warm-start figure byte-diff"
snap_dir="$(mktemp -d)"
(
    cd "$snap_dir"
    # The CLI round-trip: save a post-setup image, list its sections,
    # restore it. Any digest/fingerprint mismatch exits non-zero.
    "$OLDPWD/target/release/harness" snapshot save MACHINE.snap
    "$OLDPWD/target/release/harness" snapshot info MACHINE.snap >/dev/null
    "$OLDPWD/target/release/harness" snapshot load MACHINE.snap >/dev/null
    # Figure byte-diff: a cold run populates CACHE_snapshots/, a warm
    # run at a different worker count restores from it — the printed
    # figures must be byte-identical.
    "$OLDPWD/target/release/harness" --jobs 1 fig12-14 0.01 >fig_cold.txt
    rm -f CACHE_cells.json
    "$OLDPWD/target/release/harness" --jobs 4 fig12-14 0.01 >fig_warm.txt
    if ! cmp -s fig_cold.txt fig_warm.txt; then
        echo "FAIL: warm-started figures differ from cold-setup figures" >&2
        diff fig_cold.txt fig_warm.txt >&2 || true
        exit 1
    fi
)
rm -rf "$snap_dir"
finish

begin "static analysis self-test: the gate must fail on the seeded-violation fixtures"
if cargo run --release -q -p analysis -- lint --root crates/analysis/fixtures/violations >/tmp/fsencr_lint_fixture.out 2>&1; then
    echo "FAIL: source passes reported the seeded-violation fixture tree as clean" >&2
    exit 1
fi
# The fixture tree seeds violations in every guarded crate class,
# including the observability and fault-injection crates; each must
# actually be reported.
for seeded in "crates/bench/src/lib.rs" "crates/fsencr/src/lib.rs" "crates/obs/src/lib.rs" "crates/fsencr/src/batch.rs" "crates/secmem/src/batch.rs" "crates/crypto/src/lanes.rs" "crates/faults/src/inject.rs" "crates/snapshot/src/lib.rs"; do
    if ! grep -q "$seeded" /tmp/fsencr_lint_fixture.out; then
        echo "FAIL: lint did not flag seeded violations in $seeded" >&2
        exit 1
    fi
done
# The confinement fixtures: a plaintext leak reaching a raw NVM write
# (directly and through a caller) and a counter-free IV-reuse pad site.
# Each must be reported under its confinement rule.
for seeded in "crates/fsencr/src/leak.rs" "crates/workloads/src/ivreuse.rs"; do
    if ! grep -q "$seeded" /tmp/fsencr_lint_fixture.out; then
        echo "FAIL: confinement pass did not flag seeded violations in $seeded" >&2
        exit 1
    fi
done
for rule in "plaintext-confinement" "confinement-reach" "pad-site"; do
    if ! grep -q "$rule" /tmp/fsencr_lint_fixture.out; then
        echo "FAIL: seeded fixtures did not trip the $rule rule" >&2
        exit 1
    fi
done
finish

# Optional deeper checkers: run when the toolchain supports them,
# skip gracefully when it does not (offline container has no
# miri/TSan components by default).
if cargo miri --version >/dev/null 2>&1; then
    begin "cargo miri test -p fsencr-sim pool (optional)"
    cargo miri test -p fsencr-sim pool
    finish
else
    echo "==> miri unavailable; skipping (optional)"
fi
if [ "${FSENCR_TSAN:-0}" = "1" ] && rustc --print target-list >/dev/null 2>&1; then
    begin "ThreadSanitizer pass (FSENCR_TSAN=1)"
    RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -p fsencr-sim pool ||
        echo "    TSan pass failed or nightly unavailable; non-fatal (optional)"
    finish
else
    echo "==> ThreadSanitizer pass skipped (set FSENCR_TSAN=1 with a nightly toolchain to enable)"
fi

echo "==> verify OK in $(( $(date +%s) - t_start ))s"
