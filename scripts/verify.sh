#!/usr/bin/env sh
# Tier-1 verification: everything a change must pass before merging.
# Works fully offline — the workspace has no registry dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> verify OK"
