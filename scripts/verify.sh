#!/usr/bin/env sh
# Tier-1 verification: everything a change must pass before merging.
# Works fully offline — the workspace has no registry dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> batched-datapath equivalence: region ops vs legacy per-line path"
cargo test -q -p fsencr --test batch_equivalence
cargo test -q -p fsencr-workloads --test batch_parity

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> static analysis gate: cargo run -p analysis -- check"
cargo run --release -q -p analysis -- check

echo "==> harness bench (small scale) + schema check"
bench_dir="$(mktemp -d)"
(cd "$bench_dir" && "$OLDPWD/target/release/harness" bench 0.01)
./target/release/harness bench-check "$bench_dir/BENCH_harness.json"
rm -rf "$bench_dir"

echo "==> static analysis self-test: lint must fail on the seeded-violation fixtures"
if cargo run --release -q -p analysis -- lint --root crates/analysis/fixtures/violations >/tmp/fsencr_lint_fixture.out 2>&1; then
    echo "FAIL: lint pass reported the seeded-violation fixture tree as clean" >&2
    exit 1
fi
# The fixture tree seeds violations in every guarded crate class,
# including the observability crate; each must actually be reported.
for seeded in "crates/bench/src/lib.rs" "crates/fsencr/src/lib.rs" "crates/obs/src/lib.rs" "crates/fsencr/src/batch.rs"; do
    if ! grep -q "$seeded" /tmp/fsencr_lint_fixture.out; then
        echo "FAIL: lint did not flag seeded violations in $seeded" >&2
        exit 1
    fi
done

# Optional deeper checkers: run when the toolchain supports them,
# skip gracefully when it does not (offline container has no
# miri/TSan components by default).
if cargo miri --version >/dev/null 2>&1; then
    echo "==> cargo miri test -p fsencr-bench pool (optional)"
    cargo miri test -p fsencr-bench pool
else
    echo "==> miri unavailable; skipping (optional)"
fi
if [ "${FSENCR_TSAN:-0}" = "1" ] && rustc --print target-list >/dev/null 2>&1; then
    echo "==> ThreadSanitizer pass (FSENCR_TSAN=1)"
    RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -p fsencr-bench pool ||
        echo "    TSan pass failed or nightly unavailable; non-fatal (optional)"
else
    echo "==> ThreadSanitizer pass skipped (set FSENCR_TSAN=1 with a nightly toolchain to enable)"
fi

echo "==> verify OK"
