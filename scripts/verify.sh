#!/usr/bin/env sh
# Tier-1 verification: everything a change must pass before merging.
# Works fully offline — the workspace has no registry dependencies.
set -eu

cd "$(dirname "$0")/.."

t_start=$(date +%s)
elapsed() {
    echo "    [verify wall-clock so far: $(( $(date +%s) - t_start ))s]"
}

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> batched-datapath equivalence: region ops vs legacy per-line path"
cargo test -q -p fsencr --test batch_equivalence
cargo test -q -p fsencr-workloads --test batch_parity

echo "==> security-oracle replay: figures + rekey + crash recovery under armed oracles"
t_oracle=$(date +%s)
cargo test -q -p fsencr-bench --test oracle_replay
echo "    [oracle replay took $(( $(date +%s) - t_oracle ))s]"
elapsed

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> static analysis gate: cargo run -p analysis -- check"
cargo run --release -q -p analysis -- check

echo "==> harness bench (small scale) + schema check"
bench_dir="$(mktemp -d)"
(cd "$bench_dir" && "$OLDPWD/target/release/harness" bench 0.01)
./target/release/harness bench-check "$bench_dir/BENCH_harness.json"
rm -rf "$bench_dir"

echo "==> static analysis self-test: the gate must fail on the seeded-violation fixtures"
if cargo run --release -q -p analysis -- lint --root crates/analysis/fixtures/violations >/tmp/fsencr_lint_fixture.out 2>&1; then
    echo "FAIL: source passes reported the seeded-violation fixture tree as clean" >&2
    exit 1
fi
# The fixture tree seeds violations in every guarded crate class,
# including the observability crate; each must actually be reported.
for seeded in "crates/bench/src/lib.rs" "crates/fsencr/src/lib.rs" "crates/obs/src/lib.rs" "crates/fsencr/src/batch.rs"; do
    if ! grep -q "$seeded" /tmp/fsencr_lint_fixture.out; then
        echo "FAIL: lint did not flag seeded violations in $seeded" >&2
        exit 1
    fi
done
# The confinement fixtures: a plaintext leak reaching a raw NVM write
# (directly and through a caller) and a counter-free IV-reuse pad site.
# Each must be reported under its confinement rule.
for seeded in "crates/fsencr/src/leak.rs" "crates/workloads/src/ivreuse.rs"; do
    if ! grep -q "$seeded" /tmp/fsencr_lint_fixture.out; then
        echo "FAIL: confinement pass did not flag seeded violations in $seeded" >&2
        exit 1
    fi
done
for rule in "plaintext-confinement" "confinement-reach" "pad-site"; do
    if ! grep -q "$rule" /tmp/fsencr_lint_fixture.out; then
        echo "FAIL: seeded fixtures did not trip the $rule rule" >&2
        exit 1
    fi
done
elapsed

# Optional deeper checkers: run when the toolchain supports them,
# skip gracefully when it does not (offline container has no
# miri/TSan components by default).
if cargo miri --version >/dev/null 2>&1; then
    echo "==> cargo miri test -p fsencr-bench pool (optional)"
    cargo miri test -p fsencr-bench pool
else
    echo "==> miri unavailable; skipping (optional)"
fi
if [ "${FSENCR_TSAN:-0}" = "1" ] && rustc --print target-list >/dev/null 2>&1; then
    echo "==> ThreadSanitizer pass (FSENCR_TSAN=1)"
    RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -p fsencr-bench pool ||
        echo "    TSan pass failed or nightly unavailable; non-fatal (optional)"
else
    echo "==> ThreadSanitizer pass skipped (set FSENCR_TSAN=1 with a nightly toolchain to enable)"
fi

echo "==> verify OK in $(( $(date +%s) - t_start ))s"
