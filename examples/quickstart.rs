//! Quickstart: create an encrypted DAX file, write through the FsEncr
//! datapath, and look at what actually landed on the NVM media.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fsencr::machine::{Machine, MachineOpts, SecurityMode};
use fsencr::security;
use fsencr_fs::{AccessKind, GroupId, Mode, UserId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine with the paper's Table III configuration, running the
    // full FsEncr design: memory encryption + integrity + the hardware
    // file-encryption engine.
    let mut m = Machine::new(MachineOpts::small_test(), SecurityMode::FsEncr);

    let alice = UserId::new(1);
    let staff = GroupId::new(10);

    // Create an encrypted file. The kernel derives the key-encryption key
    // from the passphrase, generates a fresh file key, wraps it into the
    // inode and installs it in the controller's Open Tunnel Table.
    let handle = m.create(alice, staff, "diary.txt", Mode::PRIVATE, Some("correct horse"))?;
    println!("created ino {} (group {})", handle.ino, handle.group);

    // Map it DAX-style and access it with plain loads/stores.
    let map = m.mmap(&handle)?;
    let secret = b"Dear diary, the DF-bit works.";
    m.write(0, map, 0, secret)?;
    m.persist(0, map, 0, secret.len() as u64)?;

    let mut back = vec![0u8; secret.len()];
    m.read(0, map, 0, &mut back)?;
    assert_eq!(back, secret);
    println!("read back through the DAX mapping: OK");

    // What does a physical attacker scanning the DIMM see? Ciphertext.
    m.shutdown_flush()?;
    let on_media = security::media_contains(&m, secret);
    println!("plaintext visible on raw media: {on_media}");
    assert!(!on_media);

    // Re-opening needs the passphrase even for the owner (paper,
    // Section VI: this is the defence against accidental chmod 777).
    assert!(m
        .open(alice, &[staff], "diary.txt", AccessKind::Read, Some("wrong"))
        .is_err());
    let again = m.open(alice, &[staff], "diary.txt", AccessKind::Read, Some("correct horse"))?;
    assert_eq!(again.fek, handle.fek);
    println!("passphrase gate: OK");

    // Peek at the simulator's accounting.
    let stats = m.measurement();
    println!(
        "NVM traffic since boot: {} reads, {} writes; metadata cache hit rate {:.1}%",
        stats.nvm_reads,
        stats.nvm_writes,
        100.0 * stats.meta_hit_rate
    );
    Ok(())
}
