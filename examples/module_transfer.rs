//! Moving an entire NVM filesystem to a new machine (Section VI).
//!
//! The DIMM travels physically (with its ECC lanes); the processor-resident
//! secrets — memory key, OTT key, Merkle root — travel through an
//! authenticated operator channel. The receiving processor authenticates
//! the media against the root before accepting it.
//!
//! ```sh
//! cargo run --release --example module_transfer
//! ```

use fsencr::machine::{Machine, MachineOpts, SecurityMode};
use fsencr_fs::{AccessKind, GroupId, Mode, UserId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let user = UserId::new(1);
    let group = GroupId::new(1);

    // Machine 1: create an encrypted file and fill it.
    let mut m1 = Machine::new(MachineOpts::small_test(), SecurityMode::FsEncr);
    let h = m1.create(user, group, "suitcase.db", Mode::PRIVATE, Some("pw"))?;
    let map = m1.mmap(&h)?;
    m1.write(0, map, 0, b"contents packed for travel")?;
    m1.persist(0, map, 0, 26)?;
    println!("machine 1: wrote and persisted the file");

    // Export: flush everything, spill the OTT, split into parts.
    let (envelope, module) = m1.export_module()?;
    println!("machine 1: exported module (envelope: {envelope:?})");

    // Machine 2: authenticate and adopt the module.
    let mut m2 = Machine::import_module(&envelope, module)?;
    println!("machine 2: module authenticated against the transferred root");

    let h = m2.open(user, &[group], "suitcase.db", AccessKind::Read, Some("pw"))?;
    let map = m2.mmap(&h)?;
    let mut buf = [0u8; 26];
    m2.read(0, map, 0, &mut buf)?;
    assert_eq!(&buf, b"contents packed for travel");
    println!("machine 2: read the file back: OK");

    // A module tampered with in transit is rejected.
    let mut m3 = Machine::new(MachineOpts::small_test(), SecurityMode::FsEncr);
    let h = m3.create(user, group, "x", Mode::PRIVATE, Some("pw"))?;
    let map = m3.mmap(&h)?;
    m3.write(0, map, 0, b"payload")?;
    m3.persist(0, map, 0, 7)?;
    let frame = m3.fs().stat("x").unwrap().page(0).unwrap();
    let meta_base = m3.opts().general_bytes + m3.opts().pmem_bytes;
    let (envelope, mut module) = m3.export_module()?;
    let addr = fsencr_nvm::PhysAddr::new(meta_base + frame.get() * 128);
    let mut evil = module.inspect_plane().media_line(addr);
    evil[0] ^= 1;
    module.fault_plane().tamper_line(addr, &evil);
    match Machine::import_module(&envelope, module) {
        Err(e) => println!("tampered module rejected: {e}"),
        Ok(_) => unreachable!("tampering must be detected at import"),
    }
    Ok(())
}
