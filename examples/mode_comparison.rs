//! Run one persistent workload under all four security configurations
//! and print the headline comparison of the paper: software filesystem
//! encryption destroys DAX performance; FsEncr keeps it.
//!
//! ```sh
//! cargo run --release --example mode_comparison
//! ```

use fsencr::machine::{MachineOpts, SecurityMode};
use fsencr_workloads::driver::run_workload;
use fsencr_workloads::whisper::Ycsb;

fn main() {
    let modes = [
        SecurityMode::Unencrypted,
        SecurityMode::MemoryOnly,
        SecurityMode::FsEncr,
        SecurityMode::Software,
    ];
    println!("YCSB (zipfian 50/50, 2 workers) under every security mode:\n");
    println!(
        "{:<22} {:>14} {:>10} {:>10} {:>12}",
        "mode", "cycles", "nvm reads", "nvm writes", "vs ext4-dax"
    );
    let mut baseline = None;
    for mode in modes {
        let mut w = Ycsb::new(2048, 2048, 2);
        let res = run_workload(MachineOpts::benchmark(), mode, &mut w).expect("workload");
        let base = *baseline.get_or_insert(res.stats.cycles);
        println!(
            "{:<22} {:>14} {:>10} {:>10} {:>11.2}x",
            mode.to_string(),
            res.stats.cycles,
            res.stats.nvm_reads,
            res.stats.nvm_writes,
            res.stats.cycles as f64 / base as f64
        );
    }
    println!(
        "\nFsEncr should sit a few percent above baseline-security;\n\
         software encryption should sit several times above ext4-dax."
    );
}
