//! A persistent, encrypted key-value store with crash recovery.
//!
//! Runs the byte-level B+Tree engine on an FsEncr-protected DAX file,
//! crashes the machine mid-run (losing all volatile state), recovers the
//! encryption counters Osiris-style, and proves the committed data
//! survived while the media stayed ciphertext throughout.
//!
//! ```sh
//! cargo run --release --example secure_kv_store
//! ```

use fsencr::machine::{Machine, MachineOpts, SecurityMode};
use fsencr_fs::{AccessKind, GroupId, Mode, UserId};
use fsencr_workloads::kv::BTreeKv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut opts = MachineOpts::small_test();
    opts.pmem_bytes = 16 << 20;
    let mut m = Machine::new(opts, SecurityMode::FsEncr);

    let user = UserId::new(1);
    let group = GroupId::new(1);
    m.login(user, "s3cret");

    let h = m.create(user, group, "store.db", Mode::PRIVATE, Some("s3cret"))?;
    let map = m.mmap(&h)?;
    let tree = BTreeKv::create(&mut m, 0, map)?;

    // Insert a few hundred records; every put persists PMDK-style.
    for k in 0..500u64 {
        let value = format!("value-{k:04}");
        tree.put(&mut m, 0, k, value.as_bytes())?;
    }
    println!("inserted 500 records");

    // Power loss: CPU caches, metadata cache and page tables vanish.
    m.crash();
    println!("machine crashed (volatile state lost)");

    // Osiris recovery: replay counter candidates against the ECC oracle,
    // repair the on-media counter blocks, rebuild the Merkle tree.
    let report = m.recover();
    println!(
        "recovery: {} lines clean, {} repaired, {} unrecoverable",
        report.clean, report.repaired, report.unrecoverable
    );
    assert_eq!(report.unrecoverable, 0);

    // Remount and verify everything.
    let h = m.open(user, &[group], "store.db", AccessKind::Read, Some("s3cret"))?;
    let map = m.mmap(&h)?;
    let tree = BTreeKv::open(&mut m, 0, map)?;
    let mut buf = Vec::new();
    for k in 0..500u64 {
        assert!(tree.get(&mut m, 0, k, &mut buf)?, "key {k} lost");
        assert_eq!(buf, format!("value-{k:04}").as_bytes());
    }
    println!("all 500 records intact after crash + recovery");

    // Ordered scan through the leaf chain.
    let mut count = 0;
    let visited = tree.scan(&mut m, 0, |_k, _v| count += 1)?;
    println!("in-order scan visited {visited} records");
    assert_eq!(count, 500);
    Ok(())
}
