//! The paper's threat model, executed (Section III-A, Table I, Section
//! VI): a tour of attacker scenarios against the functional simulator.
//!
//! ```sh
//! cargo run --release --example attack_scenarios
//! ```

use fsencr::machine::{Machine, MachineOpts, SecurityMode};
use fsencr::security;
use fsencr_fs::{AccessKind, FsError, GroupId, Mode, UserId};
use fsencr_nvm::PAGE_BYTES;

const SECRET: &[u8] = b"Q3-LAYOFF-PLAN-DO-NOT-LEAK";

fn build(mode: SecurityMode) -> Machine {
    let mut m = Machine::new(MachineOpts::small_test(), mode);
    let alice = UserId::new(1);
    let h = m
        .create(alice, GroupId::new(1), "hr.doc", Mode::PRIVATE, Some("alice-pw"))
        .expect("create");
    let map = m.mmap(&h).expect("mmap");
    m.write(0, map, 0, SECRET).expect("write");
    m.persist(0, map, 0, SECRET.len() as u64).expect("persist");
    m.shutdown_flush().expect("flush");
    m
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Attacker X: steals the DIMM, scans it raw ==");
    for mode in [SecurityMode::Unencrypted, SecurityMode::MemoryOnly, SecurityMode::FsEncr] {
        let m = build(mode);
        let leaked = security::media_contains(&m, SECRET);
        println!("  {mode:<20} secret on media: {leaked}");
    }

    println!("\n== Attacker X escalates: breaks the memory encryption key ==");
    for mode in [SecurityMode::MemoryOnly, SecurityMode::FsEncr] {
        let m = build(mode);
        let mem_key = m.mem_key();
        let leaked = security::attacker_decrypts(&m, &mem_key, &[], SECRET);
        println!("  {mode:<20} secret exposed: {leaked}   (Table I, row 1)");
    }

    println!("\n== Attacker Y: insider with a login, after an accidental chmod 777 ==");
    let mut m = build(SecurityMode::FsEncr);
    let alice = UserId::new(1);
    let mallory = UserId::new(66);
    m.chmod(alice, "hr.doc", Mode::WIDE_OPEN)?;
    match m.open(mallory, &[], "hr.doc", AccessKind::Read, Some("guessed-pw")) {
        Err(e) => println!("  mode bits said yes, the key said: {e}"),
        Ok(_) => unreachable!("wrong passphrase must not open the file"),
    }
    assert!(matches!(
        m.open(mallory, &[], "hr.doc", AccessKind::Read, Some("guessed-pw")),
        Err(fsencr::machine::MachineError::Fs(FsError::BadPassphrase))
    ));

    println!("\n== Attacker Y: boots a different OS (fails admin authentication) ==");
    let mut m = build(SecurityMode::FsEncr);
    let frame = m.fs().stat("hr.doc").unwrap().page(0).unwrap();
    m.crash();
    m.recover();
    m.lock_file_engine();
    let line = fsencr_nvm::PhysAddr::new(frame.get() * PAGE_BYTES as u64);
    let t = m.elapsed();
    let (bytes, _) = m.fault_plane().controller_mut().read_line(t, line)?;
    let visible = bytes.windows(SECRET.len().min(16)).any(|w| w == &SECRET[..16]);
    println!("  file engine locked; physical reads show plaintext: {visible}");
    assert!(!visible);

    println!("\n== Tampering: attacker rewrites a counter block on the DIMM ==");
    let mut m = build(SecurityMode::FsEncr);
    m.crash(); // drop trusted cached metadata
    m.recover();
    let frame = m.fs().stat("hr.doc").unwrap().page(0).unwrap();
    let meta_base = m.opts().general_bytes + m.opts().pmem_bytes;
    let mecb = fsencr_nvm::PhysAddr::new(meta_base + frame.get() * 128);
    let mut evil = m.inspect_plane().media_line(mecb);
    evil[0] ^= 0xff;
    m.fault_plane().tamper_line(mecb, &evil);
    let t = m.elapsed();
    let line = fsencr_nvm::PhysAddr::new(frame.get() * PAGE_BYTES as u64);
    match m.fault_plane().controller_mut().read_line(t, line) {
        Err(e) => println!("  Merkle tree says: {e}"),
        Ok(_) => unreachable!("tampering must be detected"),
    }

    println!("\n== Secure deletion: unlink shreds the counters ==");
    let mut m = build(SecurityMode::FsEncr);
    m.unlink(UserId::new(1), "hr.doc")?;
    let leaked = security::media_contains(&m, SECRET);
    println!("  after unlink, secret recoverable from media: {leaked}");
    assert!(!leaked);

    println!("\nall attack scenarios behaved as the paper promises");
    Ok(())
}
