//! Workspace façade for the FsEncr reproduction.
//!
//! This root crate exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`; downstream users
//! depend on the member crates directly ([`fsencr`] for the machine and
//! controller, [`fsencr_workloads`] for the persistent engines). The
//! re-exports below make the workspace browsable from one rustdoc root.

#![forbid(unsafe_code)]

pub use fsencr;
pub use fsencr_cache as cache;
pub use fsencr_crypto as crypto;
pub use fsencr_fs as fs;
pub use fsencr_nvm as nvm;
pub use fsencr_secmem as secmem;
pub use fsencr_sim as sim;
pub use fsencr_workloads as workloads;
